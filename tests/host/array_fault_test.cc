/**
 * @file
 * Host robustness under the fault timeline: per-subrequest timeouts,
 * retry with backoff, RAID-5 failover into reconstruction, fail-slow
 * latency stretching, and fail-stop detection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "host/array.hh"

namespace ssdrr::host {
namespace {

ssd::Config
testConfig()
{
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 6.0;
    return cfg;
}

sim::FaultEvent
failStop(std::uint32_t drive, sim::Tick at)
{
    sim::FaultEvent e;
    e.kind = sim::FaultEvent::Kind::FailStop;
    e.drive = drive;
    e.at = at;
    return e;
}

sim::FaultEvent
failSlow(std::uint32_t drive, sim::Tick at, sim::Tick until,
         double mult)
{
    sim::FaultEvent e;
    e.kind = sim::FaultEvent::Kind::FailSlow;
    e.drive = drive;
    e.at = at;
    e.until = until;
    e.multiplier = mult;
    return e;
}

sim::FaultEvent
uecc(std::uint32_t drive, double prob)
{
    sim::FaultEvent e;
    e.kind = sim::FaultEvent::Kind::Uecc;
    e.drive = drive;
    e.probability = prob;
    return e;
}

ssd::HostRequest
read(std::uint64_t id, std::uint64_t lpn, std::uint32_t pages = 1)
{
    ssd::HostRequest req;
    req.id = id;
    req.arrival = 0;
    req.lpn = lpn;
    req.pages = pages;
    req.isRead = true;
    return req;
}

/** Run one single-read probe and return its completion. */
ssd::HostCompletion
probeRead(SsdArray &a, std::uint64_t lpn)
{
    a.precondition();
    ssd::HostCompletion last;
    int completions = 0;
    a.onHostComplete([&](const ssd::HostCompletion &c) {
        ++completions;
        last = c;
    });
    a.submit(read(1, lpn));
    a.drain();
    EXPECT_EQ(completions, 1);
    return last;
}

TEST(ArrayFaults, GenerousTimeoutChangesNothing)
{
    // Deadline tracking alone (no faults, no expiries) must leave
    // the simulated results bit-identical: the timeout events are
    // cancelled before they run.
    SsdArray::Options plain;
    plain.drives = 2;
    SsdArray a(testConfig(), core::Mechanism::NoRR, plain);
    const ssd::HostCompletion base = probeRead(a, 1);

    SsdArray::Options guarded = plain;
    guarded.timeout = sim::usec(1000000);
    SsdArray b(testConfig(), core::Mechanism::NoRR, guarded);
    const ssd::HostCompletion same = probeRead(b, 1);

    EXPECT_DOUBLE_EQ(base.responseUs, same.responseUs);
    EXPECT_EQ(a.stats().executedEvents, b.stats().executedEvents);
    EXPECT_EQ(b.stats().hostTimeouts, 0u);
    EXPECT_EQ(b.stats().hostRetries, 0u);
}

TEST(ArrayFaults, FailSlowStretchesDeviceLatency)
{
    SsdArray::Options plain;
    plain.drives = 2;
    SsdArray a(testConfig(), core::Mechanism::NoRR, plain);
    const double healthy = probeRead(a, 0).responseUs; // drive 0

    SsdArray::Options slowed = plain;
    slowed.faults = {failSlow(0, 0, sim::kTickNever, 4.0)};
    SsdArray b(testConfig(), core::Mechanism::NoRR, slowed);
    const double slow = probeRead(b, 0).responseUs;

    EXPECT_GT(slow, healthy * 3.0);
    EXPECT_LT(slow, healthy * 5.0);

    // The other drive is untouched.
    SsdArray c(testConfig(), core::Mechanism::NoRR, slowed);
    const double other = probeRead(c, 1).responseUs; // drive 1
    EXPECT_DOUBLE_EQ(other, healthy);
}

TEST(ArrayFaults, UeccReadRetriesThenSucceedsOnPermanentError)
{
    // p = 1: every attempt draws a UECC. The retries burn out and
    // the read fails over; on RAID-0 there is no redundancy, so the
    // parent completes Failed.
    SsdArray::Options opt;
    opt.drives = 2;
    opt.faults = {uecc(0, 1.0)};
    opt.retryMax = 2;
    opt.retryBackoff = sim::usec(50);
    SsdArray a(testConfig(), core::Mechanism::NoRR, opt);
    const ssd::HostCompletion done = probeRead(a, 0);

    EXPECT_EQ(done.status, ssd::CompletionStatus::Failed);
    const ssd::RunStats st = a.stats();
    EXPECT_EQ(st.ueccReads, 3u);  // initial + 2 retries
    EXPECT_EQ(st.hostRetries, 2u);
    EXPECT_EQ(st.failedRequests, 1u);
    EXPECT_EQ(st.hostTimeouts, 0u);
}

TEST(ArrayFaults, UeccFailoverReconstructsOnRaid5)
{
    SsdArray::Options opt;
    opt.drives = 4;
    opt.raid = RaidLevel::Raid5;
    opt.stripeUnitPages = 2;
    opt.faults = {uecc(0, 1.0)};
    opt.retryMax = 1;
    SsdArray a(testConfig(), core::Mechanism::NoRR, opt);
    // LPN 0 is data unit 0 of row 0 and lives on drive 0.
    const ssd::HostCompletion done = probeRead(a, 0);

    EXPECT_EQ(done.status, ssd::CompletionStatus::Ok);
    const ssd::RunStats st = a.stats();
    EXPECT_GE(st.ueccReads, 2u);
    EXPECT_EQ(st.hostFailovers, 1u);
    EXPECT_EQ(st.degradedReads, 1u);
    EXPECT_EQ(st.failedRequests, 0u);
}

TEST(ArrayFaults, FailStopReadFailsOnRaid0)
{
    SsdArray::Options opt;
    opt.drives = 2;
    opt.faults = {failStop(0, 0)};
    opt.timeout = sim::usec(500);
    opt.retryBackoff = sim::usec(50);
    SsdArray a(testConfig(), core::Mechanism::NoRR, opt);

    std::vector<std::uint32_t> detected;
    a.onDriveFailed([&](std::uint32_t d) { detected.push_back(d); });
    const ssd::HostCompletion done = probeRead(a, 0);

    EXPECT_EQ(done.status, ssd::CompletionStatus::Failed);
    EXPECT_EQ(detected, (std::vector<std::uint32_t>{0}));
    const ssd::RunStats st = a.stats();
    EXPECT_GE(st.hostTimeouts, 1u);
    EXPECT_EQ(st.failedRequests, 1u);
}

TEST(ArrayFaults, FailStopReadReconstructsOnRaid5)
{
    SsdArray::Options opt;
    opt.drives = 4;
    opt.raid = RaidLevel::Raid5;
    opt.stripeUnitPages = 2;
    opt.faults = {failStop(0, 0)};
    opt.timeout = sim::usec(500);
    opt.retryBackoff = sim::usec(50);
    SsdArray a(testConfig(), core::Mechanism::NoRR, opt);
    const ssd::HostCompletion done = probeRead(a, 0);

    EXPECT_EQ(done.status, ssd::CompletionStatus::Ok);
    const ssd::RunStats st = a.stats();
    EXPECT_GE(st.hostTimeouts, 1u);
    EXPECT_EQ(st.hostFailovers, 1u);
    EXPECT_EQ(st.degradedReads, 1u);
    EXPECT_EQ(st.failedRequests, 0u);
}

TEST(ArrayFaults, LateCompletionAfterTimeoutIsDropped)
{
    // A timeout shorter than the device service time abandons the
    // sub; the eventual device completion must be swallowed without
    // completing the parent twice.
    SsdArray::Options opt;
    opt.drives = 2;
    opt.timeout = sim::usec(1); // expires before any device read
    opt.retryMax = 0;
    SsdArray a(testConfig(), core::Mechanism::NoRR, opt);
    a.precondition();
    int completions = 0;
    ssd::HostCompletion last;
    a.onHostComplete([&](const ssd::HostCompletion &c) {
        ++completions;
        last = c;
    });
    a.submit(read(1, 0));
    a.drain();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(last.status, ssd::CompletionStatus::Failed);
    EXPECT_EQ(a.stats().hostTimeouts, 1u);
}

TEST(ArrayFaults, FaultRunsAreDeterministic)
{
    auto run = [] {
        SsdArray::Options opt;
        opt.drives = 4;
        opt.raid = RaidLevel::Raid5;
        opt.stripeUnitPages = 2;
        opt.faults = {uecc(1, 0.3), failSlow(2, 0, sim::usec(5000),
                                             3.0)};
        opt.faultSeed = 99;
        opt.timeout = sim::usec(100000);
        SsdArray a(testConfig(), core::Mechanism::NoRR, opt);
        a.precondition();
        a.onHostComplete([](const ssd::HostCompletion &) {});
        for (std::uint64_t i = 0; i < 64; ++i)
            a.submit(read(i + 1, i * 3, 2));
        a.drain();
        return a.stats();
    };
    const ssd::RunStats x = run();
    const ssd::RunStats y = run();
    EXPECT_EQ(x.executedEvents, y.executedEvents);
    EXPECT_EQ(x.ueccReads, y.ueccReads);
    EXPECT_EQ(x.hostRetries, y.hostRetries);
    EXPECT_EQ(x.hostFailovers, y.hostFailovers);
    EXPECT_DOUBLE_EQ(x.avgReadResponseUs, y.avgReadResponseUs);
}

} // namespace
} // namespace ssdrr::host

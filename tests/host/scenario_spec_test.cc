/**
 * @file
 * ScenarioSpec serialization and validation tests: JSON round-trip
 * equality, rejection of malformed/unknown-key files with actionable
 * messages, the fluent builder, and CLI parity — a legacy hand-wired
 * ScenarioConfig and the spec it is sugar for (after a save/load
 * round trip, i.e. exactly what `--dump-scenario` + `--scenario` do)
 * must produce bit-identical RunStats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "host/scenario_spec.hh"

namespace ssdrr::host {
namespace {

ScenarioSpec
fullSpec()
{
    return ScenarioBuilder()
        .name("roundtrip")
        .geometry("small")
        .pec(1.5)
        .retention(7.25)
        .temperature(55.0)
        .suspension(false)
        .seed(999)
        .drives(2)
        .threads(3)
        .hostLinkUs(12.5)
        .transferUsPerKb(0.75)
        .queueDepth(24)
        .arbitration("slo")
        .maxDeviceInflight(12)
        .mechanism(core::Mechanism::Baseline)
        .mechanism(core::Mechanism::PnAR2)
        .tenant("kv", "YCSB-C", 300)
        .qdLimit(4)
        .weight(3)
        .rateIops(5000.0)
        .burst(8.0)
        .sloUs(450.5)
        .tenant("scan", "usr_1", 400)
        .openLoop()
        .iops(3333.25)
        .channels({0, 2})
        .horizonUs(250000.0)
        .build();
}

TEST(ScenarioSpec, JsonRoundTripPreservesEveryField)
{
    const ScenarioSpec spec = fullSpec();
    const ScenarioSpec back =
        ScenarioSpec::fromJsonText(spec.toJsonText());
    EXPECT_TRUE(back == spec);
    // And the canonical text itself is a fixed point.
    EXPECT_EQ(back.toJsonText(), spec.toJsonText());
}

TEST(ScenarioSpec, Raid5ArrayFieldsRoundTrip)
{
    const ScenarioSpec spec = ScenarioBuilder()
                                  .pec(2.0)
                                  .retention(12.0)
                                  .drives(4)
                                  .raid("raid5")
                                  .stripeUnitPages(8)
                                  .failedDrives({2})
                                  .tenant("t", "usr_1", 100)
                                  .build();
    const ScenarioSpec back =
        ScenarioSpec::fromJsonText(spec.toJsonText());
    EXPECT_TRUE(back == spec);
    EXPECT_EQ(back.raidLevel, "raid5");
    EXPECT_EQ(back.stripeUnitPages, 8u);
    EXPECT_EQ(back.failedDrives,
              (std::vector<std::uint32_t>{2}));

    const ScenarioConfig cfg =
        spec.toConfig(core::Mechanism::Baseline);
    EXPECT_EQ(cfg.raid, RaidLevel::Raid5);
    EXPECT_EQ(cfg.stripeUnitPages, 8u);
    EXPECT_EQ(cfg.failedDrives, spec.failedDrives);
}

TEST(ScenarioSpec, FileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "/ssdrr_spec_roundtrip.json";
    const ScenarioSpec spec = fullSpec();
    spec.saveFile(path);
    const ScenarioSpec back = ScenarioSpec::loadFile(path);
    EXPECT_TRUE(back == spec);
    std::remove(path.c_str());
}

void
expectRejects(const std::string &text, const std::string &needle)
{
    try {
        (void)ScenarioSpec::fromJsonText(text);
        FAIL() << "expected rejection containing: " << needle;
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(ScenarioSpec, RejectsMalformedJsonWithPosition)
{
    expectRejects("{\n  \"drives\": ,\n}", "line 2");
    expectRejects("not json at all", "invalid JSON");
}

TEST(ScenarioSpec, RejectsUnknownKeysNamingThePath)
{
    expectRejects(R"({"tenants": [{"qdlimit": 4}]})",
                  "tenants[0]: unknown key \"qdlimit\"");
    expectRejects(R"({"Drives": 2})",
                  "scenario: unknown key \"Drives\"");
    expectRejects(R"({"ssd": {"pec": 1}})",
                  "ssd: unknown key \"pec\"");
}

TEST(ScenarioSpec, RejectsTypeMismatches)
{
    expectRejects(R"({"drives": "two"})",
                  "scenario.drives: expected a number, got string");
    expectRejects(R"({"drives": 1.5})", "non-negative integer");
    expectRejects(R"({"mechanisms": "Baseline"})",
                  "mechanisms: expected an array");
}

TEST(ScenarioSpec, RejectsSemanticConflicts)
{
    // Unknown names.
    expectRejects(R"({"mechanisms": ["Warp9"], "tenants": [{}]})",
                  "unknown mechanism \"Warp9\"");
    expectRejects(
        R"({"tenants": [{"workload": "usr_9"}]})",
        "tenants[0].workload: unknown workload \"usr_9\"");
    expectRejects(
        R"({"host": {"arbitration": "edf"}, "tenants": [{}]})",
        "host.arbitration: unknown policy \"edf\"");
    // Cross-field conflicts.
    expectRejects(R"({"tenants": [{"iops": 1000}]})",
                  "closed-loop injection is completion-driven");
    expectRejects(R"({"tenants": [{"horizonUs": 1000}]})",
                  "a time horizon needs mode \"open\"");
    expectRejects(R"({"tenants": [{"sloUs": 500}]})",
                  "only honoured by the \"slo\" policy");
    expectRejects(
        R"({"host": {"arbitration": "slo"}, "tenants": [{}]})",
        "needs at least one tenant with sloUs > 0");
    expectRejects(R"({"tenants": [{"burst": 4}]})",
                  "a token bucket needs a refill rate");
    expectRejects(
        R"({"host": {"queueDepth": 8},
            "tenants": [{"qdLimit": 16}]})",
        "exceeds host.queueDepth");
    expectRejects(R"({"tenants": [{"channels": [7]}]})",
                  "has 4 channels");
    expectRejects(R"({"tenants": [{"channels": [1, 1]}]})",
                  "listed twice");
    expectRejects(
        R"({"ssd": {"refreshMonths": 3},
            "tenants": [{"channels": [0]}]})",
        "cannot be combined with ssd.refreshMonths");
    expectRejects(R"({"tenants": []})",
                  "needs at least one tenant");
    // Integers beyond 2^53 would be silently rounded by the
    // double-backed JSON number — reject instead of running with a
    // corrupted seed.
    expectRejects(R"({"ssd": {"seed": 9007199254740993},
                      "tenants": [{}]})",
                  "exceeds 2^53");
    // uint32 fields must reject rather than truncate: 2^32+1 as a
    // drive count would otherwise silently run with 1 drive.
    expectRejects(R"({"drives": 4294967297, "tenants": [{}]})",
                  "scenario.drives: 4294967297 is out of range");
    // The sharded engine needs a synchronization window: worker
    // threads without a host link must be rejected, with the fix
    // named.
    expectRejects(R"({"threads": 4, "tenants": [{}]})",
                  "need host.hostLinkUs > 0");
    // threads: 0 is "use hardware concurrency" — a multi-worker
    // request, so it carries the same link requirement.
    expectRejects(R"({"threads": 0, "tenants": [{}]})",
                  "need host.hostLinkUs > 0");
    expectRejects(
        R"({"host": {"hostLinkUs": -3}, "tenants": [{}]})",
        "host.hostLinkUs");
    // A sub-tick link would truncate to 0 ticks and silently fall
    // back to the legacy engine (dropping the modelled turnaround
    // AND the worker threads) — reject instead.
    expectRejects(
        R"({"host": {"hostLinkUs": 0.0005}, "tenants": [{}]})",
        "rounds to zero simulator ticks");
    expectRejects(
        R"({"host": {"transferUsPerKb": -1}, "tenants": [{}]})",
        "host.transferUsPerKb");
}

TEST(ScenarioSpec, RejectsInvalidArrayLayouts)
{
    expectRejects(
        R"({"array": {"raidLevel": "raid6"}, "tenants": [{}]})",
        "array.raidLevel: unknown level \"raid6\"");
    expectRejects(
        R"({"array": {"stripeUnitPages": 0}, "tenants": [{}]})",
        "array.stripeUnitPages: must be >= 1");
    // RAID-5 needs a data drive besides the rotating parity.
    expectRejects(R"({"drives": 2, "array": {"raidLevel": "raid5"},
                      "tenants": [{}]})",
                  "\"raid5\" needs drives >= 3");
    // Failed drives must exist...
    expectRejects(R"({"drives": 4,
                      "array": {"raidLevel": "raid5",
                                "failedDrives": [4]},
                      "tenants": [{}]})",
                  "array.failedDrives[0]: drive 4 is out of range");
    // ... be unique ...
    expectRejects(R"({"drives": 4,
                      "array": {"raidLevel": "raid5",
                                "failedDrives": [1, 1]},
                      "tenants": [{}]})",
                  "array.failedDrives[1]: drive 1 listed twice");
    // ... and stay within the layout's fault tolerance.
    expectRejects(R"({"drives": 4,
                      "array": {"raidLevel": "raid5",
                                "failedDrives": [0, 2]},
                      "tenants": [{}]})",
                  "exceed what \"raid5\" can serve through");
    expectRejects(
        R"({"drives": 2, "array": {"failedDrives": [0]},
            "tenants": [{}]})",
        "raid0 has no redundancy");
    // Channel affinity's lattice math assumes raid0 striping.
    expectRejects(R"({"drives": 4,
                      "array": {"raidLevel": "raid5"},
                      "tenants": [{"channels": [0]}]})",
                  "channel affinity assumes the raid0 striped "
                  "layout");
    expectRejects(
        R"({"array": {"raidLevel": 5}, "tenants": [{}]})",
        "array.raidLevel: expected a string");
    expectRejects(
        R"({"array": {"failedDrives": 1}, "tenants": [{}]})",
        "array.failedDrives: expected an array");
}

TEST(ScenarioSpec, FaultTimelineRoundTripsAndReachesTheConfig)
{
    const ScenarioSpec spec = ScenarioBuilder()
                                  .drives(4)
                                  .raid("raid5")
                                  .stripeUnitPages(4)
                                  .hostLinkUs(10.0)
                                  .timeoutUs(1500.0)
                                  .retryMax(3)
                                  .retryBackoffUs(250.0)
                                  .failSlow(2, 500.0, 4000.0, 4.0)
                                  .ueccFault(1, 0.0, 8000.0, 0.02)
                                  .failStop(0, 3000.0, true, 48)
                                  .tenant("t", "usr_1", 100)
                                  .build();
    const ScenarioSpec back =
        ScenarioSpec::fromJsonText(spec.toJsonText());
    EXPECT_TRUE(back == spec);
    ASSERT_EQ(back.faults.size(), 3u);
    EXPECT_EQ(back.faults[0].type, "failSlow");
    EXPECT_EQ(back.faults[2].rebuildRows, 48u);
    EXPECT_DOUBLE_EQ(back.timeoutUs, 1500.0);
    EXPECT_EQ(back.retryMax, 3u);
    EXPECT_DOUBLE_EQ(back.retryBackoffUs, 250.0);

    const ScenarioConfig cfg =
        spec.toConfig(core::Mechanism::Baseline);
    ASSERT_EQ(cfg.faults.size(), 3u);
    EXPECT_EQ(cfg.faults[0].kind, sim::FaultEvent::Kind::FailSlow);
    EXPECT_EQ(cfg.faults[0].at, sim::usec(500.0));
    EXPECT_EQ(cfg.faults[0].until, sim::usec(4000.0));
    EXPECT_DOUBLE_EQ(cfg.faults[0].multiplier, 4.0);
    EXPECT_EQ(cfg.faults[1].kind, sim::FaultEvent::Kind::Uecc);
    EXPECT_DOUBLE_EQ(cfg.faults[1].probability, 0.02);
    EXPECT_EQ(cfg.faults[2].kind, sim::FaultEvent::Kind::FailStop);
    EXPECT_EQ(cfg.faults[2].until, sim::kTickNever);
    EXPECT_TRUE(cfg.faults[2].rebuild);
    EXPECT_EQ(cfg.faults[2].rebuildRows, 48u);
    EXPECT_DOUBLE_EQ(cfg.timeoutUs, 1500.0);
    EXPECT_EQ(cfg.retryMax, 3u);
    EXPECT_DOUBLE_EQ(cfg.retryBackoffUs, 250.0);
}

TEST(ScenarioSpec, RejectsInvalidFaultTimelines)
{
    expectRejects(
        R"({"faults": [{"type": "meteor"}], "tenants": [{}]})",
        "faults[0].type: unknown fault \"meteor\"");
    expectRejects(
        R"({"faults": [{"type": "failSlow", "drive": 2,
                        "multiplier": 3}],
            "drives": 2, "tenants": [{}]})",
        "faults[0].drive: drive 2 is out of range");
    // A pre-failed drive cannot fault again mid-run.
    expectRejects(
        R"({"drives": 4,
            "array": {"raidLevel": "raid5", "failedDrives": [1]},
            "faults": [{"type": "failSlow", "drive": 1,
                        "multiplier": 3}],
            "tenants": [{}]})",
        "faults[0].drive: drive 1 is already listed in "
        "array.failedDrives");
    // Fail-stop needs the host deadline that detects it.
    expectRejects(
        R"({"drives": 2,
            "faults": [{"type": "failStop", "drive": 0}],
            "tenants": [{}]})",
        "host.timeoutUs: a failStop fault needs");
    expectRejects(
        R"({"drives": 2,
            "faults": [{"type": "failStop", "drive": 0},
                       {"type": "failStop", "drive": 0}],
            "host": {"timeoutUs": 500}, "tenants": [{}]})",
        "faults[1].drive: drive 0 fail-stops twice");
    expectRejects(
        R"({"faults": [{"type": "failSlow", "drive": 0,
                        "multiplier": 1.0}],
            "tenants": [{}]})",
        "faults[0].multiplier");
    expectRejects(
        R"({"faults": [{"type": "uecc", "drive": 0,
                        "probability": 1.5}],
            "tenants": [{}]})",
        "faults[0].probability");
    expectRejects(
        R"({"faults": [{"type": "failSlow", "drive": 0, "atUs": 500,
                        "untilUs": 400, "multiplier": 2}],
            "tenants": [{}]})",
        "faults[0].untilUs");
    // Rebuild rides on a raid5 failStop only.
    expectRejects(
        R"({"drives": 2,
            "faults": [{"type": "failStop", "drive": 0,
                        "rebuild": true}],
            "host": {"timeoutUs": 500}, "tenants": [{}]})",
        "faults[0].rebuild: rebuild-to-spare");
    // Per-type key schema: a failStop has no window.
    expectRejects(
        R"({"faults": [{"type": "failStop", "untilUs": 900}],
            "tenants": [{}]})",
        "faults[0]: unknown key \"untilUs\"");
    expectRejects(R"({"faults": {}, "tenants": [{}]})",
                  "faults: expected an array");
    expectRejects(
        R"({"host": {"retryMax": 99}, "tenants": [{}]})",
        "host.retryMax");
    expectRejects(
        R"({"host": {"timeoutUs": -4}, "tenants": [{}]})",
        "host.timeoutUs");
}

TEST(ScenarioSpec, ShardedEngineFieldsReachTheConfig)
{
    const ScenarioSpec spec = fullSpec();
    const ScenarioConfig cfg =
        spec.toConfig(core::Mechanism::Baseline);
    EXPECT_EQ(cfg.threads, 3u);
    EXPECT_DOUBLE_EQ(cfg.hostLinkUs, 12.5);
}

TEST(ScenarioSpec, ThreadsZeroIsHardwareConcurrencySugar)
{
    // The spec keeps the literal 0 (machine-independent on disk, so
    // --dump-scenario round-trips it); only toConfig() resolves it
    // to the machine's core count.
    ScenarioSpec spec = ScenarioSpec::fromJsonText(
        R"({"threads": 0,
            "host": {"hostLinkUs": 10},
            "tenants": [{"workload": "YCSB-C", "requests": 10}]})");
    EXPECT_EQ(spec.threads, 0u);
    spec.validate();

    const ScenarioSpec reparsed =
        ScenarioSpec::fromJsonText(spec.toJsonText());
    EXPECT_EQ(reparsed.threads, 0u);
    EXPECT_EQ(reparsed, spec);

    const ScenarioConfig cfg =
        spec.toConfig(core::Mechanism::Baseline);
    const unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(cfg.threads, hw != 0 ? hw : 1u);
    EXPECT_GE(cfg.threads, 1u);
}

TEST(ScenarioSpec, FullChannelListIsNoRestriction)
{
    // Naming every channel is normalized to "unmasked", so it must
    // not trip the affinity-only refresh conflict.
    const ScenarioSpec spec = ScenarioSpec::fromJsonText(
        R"({"ssd": {"refreshMonths": 3},
            "tenants": [{"channels": [0, 1, 2, 3]}]})");
    EXPECT_EQ(spec.tenants[0].channelMask, 0xfu);
}

TEST(ScenarioBuilder, PerTenantSettersNeedATenant)
{
    EXPECT_THROW(ScenarioBuilder().qdLimit(4), SpecError);
}

TEST(ScenarioBuilder, EmptySweepDefaultsToBaseline)
{
    const ScenarioSpec spec =
        ScenarioBuilder().tenant("t", "usr_1", 10).build();
    ASSERT_EQ(spec.mechanisms.size(), 1u);
    EXPECT_EQ(spec.mechanisms[0], "Baseline");
}

/** Every deterministic RunStats field, compared exactly. */
void
expectIdenticalStats(const ssd::RunStats &a, const ssd::RunStats &b)
{
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.retrySamples, b.retrySamples);
    EXPECT_EQ(a.suspensions, b.suspensions);
    EXPECT_EQ(a.gcCollections, b.gcCollections);
    EXPECT_EQ(a.readFailures, b.readFailures);
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.avgRetrySteps, b.avgRetrySteps);
    EXPECT_EQ(a.simulatedMs, b.simulatedMs);
    EXPECT_EQ(a.avgResponseUs, b.avgResponseUs);
    EXPECT_EQ(a.avgReadResponseUs, b.avgReadResponseUs);
    EXPECT_EQ(a.p50ReadResponseUs, b.p50ReadResponseUs);
    EXPECT_EQ(a.p99ReadResponseUs, b.p99ReadResponseUs);
    EXPECT_EQ(a.p999ReadResponseUs, b.p999ReadResponseUs);
}

TEST(ScenarioSpec, CliParityLegacyConfigVsSavedSpec)
{
    // The legacy hand-wired config, exactly as pre-v2 callers (and
    // the pre-v2 ssdrr_sim) built it.
    ScenarioConfig legacy;
    legacy.ssd = ssd::Config::small();
    legacy.ssd.basePeKilo = 1.0;
    legacy.ssd.baseRetentionMonths = 6.0;
    legacy.ssd.seed = 21;
    legacy.mech = core::Mechanism::PnAR2;
    legacy.drives = 2;
    legacy.host.queueDepth = 16;
    legacy.host.arbitration = Arbitration::WeightedRoundRobin;
    for (std::uint32_t t = 0; t < 3; ++t) {
        TenantSpec ts;
        ts.workload = "usr_1";
        ts.name = "usr_1#" + std::to_string(t);
        ts.requests = 200;
        ts.qdLimit = 16;
        ts.weight = t + 1;
        legacy.tenants.push_back(ts);
    }
    const ScenarioResult ref = runScenario(legacy);

    // The same run as a spec, pushed through the full JSON
    // round-trip (what --dump-scenario + --scenario do).
    ScenarioBuilder b;
    b.pec(1.0).retention(6.0).seed(21).drives(2).queueDepth(16)
        .arbitration(Arbitration::WeightedRoundRobin)
        .mechanism(core::Mechanism::PnAR2);
    for (std::uint32_t t = 0; t < 3; ++t)
        b.tenant("usr_1#" + std::to_string(t), "usr_1", 200)
            .qdLimit(16)
            .weight(t + 1);
    const ScenarioSpec loaded =
        ScenarioSpec::fromJsonText(b.build().toJsonText());
    const ScenarioResult got =
        runScenario(loaded, core::Mechanism::PnAR2);

    expectIdenticalStats(ref.array, got.array);
    ASSERT_EQ(ref.tenants.size(), got.tenants.size());
    for (std::size_t t = 0; t < ref.tenants.size(); ++t) {
        EXPECT_EQ(ref.tenants[t].completed, got.tenants[t].completed);
        EXPECT_EQ(ref.tenants[t].avgUs, got.tenants[t].avgUs);
        EXPECT_EQ(ref.tenants[t].p99Us, got.tenants[t].p99Us);
        EXPECT_EQ(ref.tenants[t].p999Us, got.tenants[t].p999Us);
    }
    EXPECT_EQ(ref.fetchedPerQueue, got.fetchedPerQueue);
}

} // namespace
} // namespace ssdrr::host

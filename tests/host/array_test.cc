/**
 * @file
 * SsdArray: LPN striping math, multi-page request splitting/fan-in,
 * and run-to-run determinism (same seed => identical per-tenant
 * statistics).
 */

#include <gtest/gtest.h>

#include "host/array.hh"
#include "host/scenario.hh"

namespace ssdrr::host {
namespace {

ssd::Config
testConfig()
{
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 6.0;
    return cfg;
}

TEST(SsdArray, StripingMath)
{
    SsdArray a(testConfig(), core::Mechanism::NoRR, 3);
    EXPECT_EQ(a.drives(), 3u);
    EXPECT_EQ(a.logicalPages(),
              a.drive(0).config().logicalPages() * 3);
    // Page-granular RAID-0: consecutive global LPNs rotate drives.
    EXPECT_EQ(a.driveOf(0), 0u);
    EXPECT_EQ(a.driveOf(1), 1u);
    EXPECT_EQ(a.driveOf(2), 2u);
    EXPECT_EQ(a.driveOf(3), 0u);
    EXPECT_EQ(a.localLpn(0), 0u);
    EXPECT_EQ(a.localLpn(3), 1u);
    EXPECT_EQ(a.localLpn(7), 2u);
}

TEST(SsdArray, SplitsSpanningRequestAndCompletesOnce)
{
    SsdArray a(testConfig(), core::Mechanism::NoRR, 2);
    a.precondition();

    int completions = 0;
    ssd::HostCompletion last;
    a.onHostComplete([&](const ssd::HostCompletion &c) {
        ++completions;
        last = c;
    });

    // 5 pages from LPN 1: odd LPNs 1,3,5 land on drive 1, even LPNs
    // 2,4 on drive 0. Both drives serve one subrequest each; the
    // host sees exactly one completion for the parent.
    ssd::HostRequest req;
    req.id = 42;
    req.arrival = 0;
    req.lpn = 1;
    req.pages = 5;
    req.isRead = true;
    a.submit(req);
    a.drain();

    EXPECT_EQ(completions, 1);
    EXPECT_EQ(last.id, 42u);
    EXPECT_TRUE(last.isRead);
    EXPECT_GT(last.responseUs, 0.0);
    // Each drive served one subrequest.
    EXPECT_EQ(a.drive(0).stats().reads, 1u);
    EXPECT_EQ(a.drive(1).stats().reads, 1u);
    const ssd::RunStats st = a.stats();
    EXPECT_DOUBLE_EQ(st.avgResponseUs, last.responseUs);
}

TEST(SsdArray, RejectsRequestsBeyondCapacity)
{
    SsdArray a(testConfig(), core::Mechanism::NoRR, 2);
    a.precondition();
    ssd::HostRequest req;
    req.id = 1;
    req.lpn = a.logicalPages() - 1;
    req.pages = 2;
    EXPECT_THROW(a.submit(req), std::logic_error);
}

SsdArray::Options
raid5Options(std::uint32_t drives,
             std::vector<std::uint32_t> failed = {})
{
    SsdArray::Options opt;
    opt.drives = drives;
    opt.raid = RaidLevel::Raid5;
    opt.stripeUnitPages = 2;
    opt.failedDrives = std::move(failed);
    return opt;
}

TEST(SsdArray, Raid5CapacityGivesOneDriveToParity)
{
    SsdArray a(testConfig(), core::Mechanism::NoRR, raid5Options(4));
    const std::uint64_t per_drive =
        a.drive(0).config().logicalPages();
    EXPECT_EQ(a.logicalPages(), per_drive / 2 * 2 * 3);
    EXPECT_EQ(a.layout().level(), RaidLevel::Raid5);
}

TEST(SsdArray, Raid5WriteUpdatesParityOnASecondDrive)
{
    SsdArray a(testConfig(), core::Mechanism::NoRR, raid5Options(4));
    a.precondition();
    int completions = 0;
    a.onHostComplete(
        [&](const ssd::HostCompletion &) { ++completions; });

    ssd::HostRequest req;
    req.id = 1;
    req.lpn = 0;
    req.pages = 1;
    req.isRead = false;
    a.submit(req);
    a.drain();

    EXPECT_EQ(completions, 1);
    const ssd::RunStats st = a.stats();
    EXPECT_EQ(st.writes, 1u); // one request at the array surface
    EXPECT_EQ(st.parityWrites, 1u);
    EXPECT_EQ(st.degradedReads, 0u);
    // Read-modify-write: old data + old parity were really read, new
    // data + new parity really written — two drives each saw one
    // read and one write.
    std::uint64_t drive_reads = 0, drive_writes = 0;
    for (std::uint32_t d = 0; d < a.drives(); ++d) {
        drive_reads += a.drive(d).stats().reads;
        drive_writes += a.drive(d).stats().writes;
    }
    EXPECT_EQ(drive_reads, 2u);
    EXPECT_EQ(drive_writes, 2u);
}

TEST(SsdArray, Raid5DegradedReadJoinsSurvivingDrives)
{
    SsdArray a(testConfig(), core::Mechanism::NoRR,
               raid5Options(4, {1}));
    a.precondition();
    int completions = 0;
    ssd::HostCompletion last;
    a.onHostComplete([&](const ssd::HostCompletion &c) {
        ++completions;
        last = c;
    });

    // Find a data page of the failed drive and read it.
    std::uint64_t g = 0;
    while (a.driveOf(g) != 1)
        ++g;
    ssd::HostRequest req;
    req.id = 7;
    req.lpn = g;
    req.pages = 1;
    req.isRead = true;
    a.submit(req);
    a.drain();

    // The host sees exactly one completion; under the hood the read
    // fanned out to the three survivors and joined.
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(last.id, 7u);
    EXPECT_EQ(a.drive(1).stats().reads, 0u);
    std::uint64_t survivor_reads = 0;
    for (std::uint32_t d : {0u, 2u, 3u})
        survivor_reads += a.drive(d).stats().reads;
    EXPECT_EQ(survivor_reads, 3u);

    const ssd::RunStats st = a.stats();
    EXPECT_EQ(st.reads, 1u);
    EXPECT_EQ(st.degradedReads, 1u);
    EXPECT_GT(st.reconstructionReads, 0u);
    EXPECT_EQ(st.avgDegradedReadUs, last.responseUs);
    EXPECT_EQ(a.degradedReadResponseTimes().count(), 1u);
}

TEST(SsdArray, Raid5HealthyReadTouchesOneDrive)
{
    SsdArray a(testConfig(), core::Mechanism::NoRR,
               raid5Options(4, {1}));
    a.precondition();
    a.onHostComplete([](const ssd::HostCompletion &) {});

    // A page on a surviving drive reads normally even in degraded
    // mode.
    std::uint64_t g = 0;
    while (a.driveOf(g) == 1)
        ++g;
    ssd::HostRequest req;
    req.id = 8;
    req.lpn = g;
    req.pages = 1;
    a.submit(req);
    a.drain();

    const ssd::RunStats st = a.stats();
    EXPECT_EQ(st.reads, 1u);
    EXPECT_EQ(st.degradedReads, 0u);
    EXPECT_EQ(st.reconstructionReads, 0u);
}

ScenarioConfig
scenario(std::uint64_t seed)
{
    ScenarioConfig sc;
    sc.ssd = testConfig();
    sc.ssd.seed = seed;
    sc.mech = core::Mechanism::PnAR2;
    sc.drives = 2;
    sc.host.queueDepth = 8;
    sc.host.arbitration = Arbitration::WeightedRoundRobin;
    for (int t = 0; t < 2; ++t) {
        TenantSpec ts;
        ts.workload = t == 0 ? "usr_1" : "YCSB-C";
        ts.name = "t" + std::to_string(t);
        ts.requests = 120;
        ts.qdLimit = 8;
        ts.weight = t + 1;
        sc.tenants.push_back(ts);
    }
    return sc;
}

TEST(SsdArray, SameSeedSameStats)
{
    const ScenarioResult a = runScenario(scenario(42));
    const ScenarioResult b = runScenario(scenario(42));
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].completed, b.tenants[i].completed);
        EXPECT_EQ(a.tenants[i].avgUs, b.tenants[i].avgUs);
        EXPECT_EQ(a.tenants[i].p50Us, b.tenants[i].p50Us);
        EXPECT_EQ(a.tenants[i].p99Us, b.tenants[i].p99Us);
        EXPECT_EQ(a.tenants[i].p999Us, b.tenants[i].p999Us);
        EXPECT_EQ(a.tenants[i].maxUs, b.tenants[i].maxUs);
    }
    EXPECT_EQ(a.array.avgResponseUs, b.array.avgResponseUs);
    EXPECT_EQ(a.array.reads, b.array.reads);
    EXPECT_EQ(a.fetchedPerQueue, b.fetchedPerQueue);
}

TEST(SsdArray, DifferentSeedDifferentStats)
{
    const ScenarioResult a = runScenario(scenario(42));
    const ScenarioResult b = runScenario(scenario(43));
    // The operating point is identical but traces and error patterns
    // differ; identical latency distributions would mean the seed is
    // being ignored somewhere.
    EXPECT_NE(a.array.avgResponseUs, b.array.avgResponseUs);
}

} // namespace
} // namespace ssdrr::host

/**
 * @file
 * Unit tests for the grid-of-scenarios sweep layer (host/sweep.hh):
 * cross-product expansion order and labels, axis-path application
 * (dots, array indices, the mechanism and fabric.preset sugars),
 * fail-fast rejection naming "axes.<path>", per-cell semantic
 * validation naming the cell, and the deterministic aggregate
 * (stable row order, stable digest, error-row degradation). The
 * process-pool driver on top of this is covered by the
 * sweep_jobs_determinism ctest, which runs the ssdrr_sweep binary
 * at --jobs 1 vs --jobs 4 and diffs bytes.
 */

#include <gtest/gtest.h>

#include <string>

#include "host/bench_scenarios.hh"
#include "host/sweep.hh"

namespace ssdrr {
namespace {

using sim::json::Value;

/** Sweep over the shared bench scenario: 2 mechanisms x 2 wear
 *  points x 2 workloads = 8 cells. */
host::SweepSpec
miniGrid(std::uint64_t requests = 60)
{
    Value doc = Value::object();
    doc.set("base", host::buildBenchScenario(requests).toJson());
    Value axes = Value::object();
    Value mechs = Value::array();
    mechs.push(Value("Baseline"));
    mechs.push(Value("PnAR2"));
    axes.set("mechanism", std::move(mechs));
    Value pec = Value::array();
    pec.push(Value(1.0));
    pec.push(Value(3.0));
    axes.set("ssd.pecKilo", std::move(pec));
    Value wl = Value::array();
    wl.push(Value("usr_1"));
    wl.push(Value("stg_0"));
    axes.set("tenants[0].workload", std::move(wl));
    doc.set("axes", std::move(axes));
    return host::SweepSpec::fromJson(doc);
}

TEST(Sweep, ExpandsTheCrossProductRowMajorFirstAxisSlowest)
{
    const host::SweepSpec sweep = miniGrid();
    ASSERT_EQ(sweep.cells(), 8u);
    EXPECT_EQ(sweep.label(0),
              "mechanism=Baseline ssd.pecKilo=1 "
              "tenants[0].workload=usr_1");
    EXPECT_EQ(sweep.label(1),
              "mechanism=Baseline ssd.pecKilo=1 "
              "tenants[0].workload=stg_0");
    EXPECT_EQ(sweep.label(2),
              "mechanism=Baseline ssd.pecKilo=3 "
              "tenants[0].workload=usr_1");
    EXPECT_EQ(sweep.label(7),
              "mechanism=PnAR2 ssd.pecKilo=3 "
              "tenants[0].workload=stg_0");
    EXPECT_EQ(sweep.coordinates(5),
              (std::vector<std::size_t>{1, 0, 1}));
}

TEST(Sweep, MaterializesCellsThroughTheAxes)
{
    const host::SweepSpec sweep = miniGrid();
    const host::ScenarioSpec cell0 = sweep.materialize(0);
    EXPECT_EQ(cell0.mechanisms,
              (std::vector<std::string>{"Baseline"}));
    EXPECT_EQ(cell0.ssd.pecKilo, 1.0);
    EXPECT_EQ(cell0.tenants[0].workload, "usr_1");
    const host::ScenarioSpec cell7 = sweep.materialize(7);
    EXPECT_EQ(cell7.mechanisms, (std::vector<std::string>{"PnAR2"}));
    EXPECT_EQ(cell7.ssd.pecKilo, 3.0);
    EXPECT_EQ(cell7.tenants[0].workload, "stg_0");
    // Untouched base fields survive: the other tenants keep their
    // bench-scenario shape.
    EXPECT_EQ(cell7.tenants.size(), 4u);
    EXPECT_EQ(cell7.tenants[1].workload, "usr_1");
}

TEST(Sweep, FabricPresetAxisMaterializesTopologies)
{
    host::ScenarioSpec base;
    {
        host::ScenarioBuilder b;
        b.geometry("small").drives(4).queueDepth(8);
        b.tenant("t", "usr_1", 40).qdLimit(8);
        base = b.build();
    }
    Value doc = Value::object();
    doc.set("base", base.toJson());
    Value axes = Value::object();
    Value presets = Value::array();
    presets.push(Value("flat"));
    presets.push(Value("tree:2x2"));
    axes.set("fabric.preset", std::move(presets));
    doc.set("axes", std::move(axes));
    const host::SweepSpec sweep = host::SweepSpec::fromJson(doc);
    ASSERT_EQ(sweep.cells(), 2u);
    const host::ScenarioSpec flat = sweep.materialize(0);
    const host::ScenarioSpec tree = sweep.materialize(1);
    EXPECT_FALSE(flat.fabric.empty());
    EXPECT_FALSE(tree.fabric.empty());
    EXPECT_NE(flat.fabric.nodes.size(), tree.fabric.nodes.size());
}

host::SweepSpec
sweepFromText(const std::string &text)
{
    return host::SweepSpec::fromJsonText(text);
}

TEST(Sweep, RejectsUnknownAxisPathNamingIt)
{
    const char *text = R"({
      "base": {"tenants": [{"workload": "usr_1", "requests": 10}]},
      "axes": {"ssd.pecKiloTypo": [1, 2]}
    })";
    try {
        sweepFromText(text);
        FAIL() << "unknown axis path accepted";
    } catch (const host::SpecError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("axes.ssd.pecKiloTypo"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("pecKiloTypo"), std::string::npos) << msg;
    }
}

TEST(Sweep, RejectsEmptyValueListNamingTheAxis)
{
    const char *text = R"({
      "base": {"tenants": [{"workload": "usr_1", "requests": 10}]},
      "axes": {"ssd.pecKilo": []}
    })";
    EXPECT_THROW(
        {
            try {
                sweepFromText(text);
            } catch (const host::SpecError &e) {
                EXPECT_NE(
                    std::string(e.what()).find("axes.ssd.pecKilo"),
                    std::string::npos)
                    << e.what();
                throw;
            }
        },
        host::SpecError);
}

TEST(Sweep, RejectsMistypedAxisValueNamingTheIndex)
{
    const char *text = R"({
      "base": {"tenants": [{"workload": "usr_1", "requests": 10}]},
      "axes": {"ssd.pecKilo": [1, "lots"]}
    })";
    try {
        sweepFromText(text);
        FAIL() << "mistyped axis value accepted";
    } catch (const host::SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("axes.ssd.pecKilo[1]"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Sweep, RejectsOutOfRangeArrayIndexAndUnknownTopKey)
{
    EXPECT_THROW(sweepFromText(R"({
      "base": {"tenants": [{"workload": "usr_1", "requests": 10}]},
      "axes": {"tenants[3].workload": ["usr_1"]}
    })"),
                 host::SpecError);
    EXPECT_THROW(sweepFromText(R"({
      "base": {"tenants": [{"workload": "usr_1", "requests": 10}]},
      "axis": {}
    })"),
                 host::SpecError);
    EXPECT_THROW(sweepFromText(R"({
      "axes": {"ssd.pecKilo": [1]}
    })"),
                 host::SpecError);
}

TEST(Sweep, SemanticallyInvalidCellNamesTheCell)
{
    // Structurally fine per axis, invalid in combination: drive 2
    // only exists for some cells of the drives axis.
    const char *text = R"({
      "base": {"drives": 4, "array": {"raidLevel": "raid5",
               "failedDrives": [2]},
               "tenants": [{"workload": "usr_1", "requests": 10}]},
      "axes": {"drives": [4, 2]}
    })";
    const host::SweepSpec sweep = sweepFromText(text);
    ASSERT_EQ(sweep.cells(), 2u);
    EXPECT_NO_THROW(sweep.materialize(0));
    try {
        sweep.materialize(1);
        FAIL() << "invalid combination accepted";
    } catch (const host::SpecError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("cell 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("drives=2"), std::string::npos) << msg;
    }
}

TEST(Sweep, AggregateIsDeterministicAndDigestIsStable)
{
    const host::SweepSpec sweep = miniGrid(40);
    host::TraceCache cache;
    std::vector<Value> results(sweep.cells());
    for (std::size_t i = 0; i < sweep.cells(); ++i)
        results[i] = host::runSweepCell(sweep, i, &cache);
    const Value agg1 = host::aggregateSweep(sweep, results);
    // Re-running the cells must reproduce the aggregate bytes — the
    // digest is a regression golden, not a fingerprint of the run.
    std::vector<Value> again(sweep.cells());
    for (std::size_t i = 0; i < sweep.cells(); ++i)
        again[i] = host::runSweepCell(sweep, i, &cache);
    const Value agg2 = host::aggregateSweep(sweep, again);
    EXPECT_EQ(agg1.dump(2), agg2.dump(2));
    EXPECT_EQ(host::sweepDigest(agg1), host::sweepDigest(agg2));
    EXPECT_EQ(host::sweepTable(agg1), host::sweepTable(agg2));

    // 8 cells x 1 mechanism each (the mechanism axis pins one).
    ASSERT_TRUE(agg1.find("rows")->isArray());
    EXPECT_EQ(agg1.find("rows")->elements().size(), 8u);
    const Value &row0 = agg1.find("rows")->elements()[0];
    EXPECT_EQ(row0.find("status")->asString(), "ok");
    EXPECT_EQ(row0.find("mechanism")->asString(), "Baseline");
    EXPECT_GT(row0.find("reads")->asNumber(), 0.0);
}

TEST(Sweep, ErrorRowsDegradeTheTableNotTheAggregate)
{
    const host::SweepSpec sweep = miniGrid(40);
    host::TraceCache cache;
    std::vector<Value> results(sweep.cells());
    for (std::size_t i = 0; i < sweep.cells(); ++i)
        results[i] =
            i == 3 ? host::sweepErrorRow(sweep, i, 2,
                                         "synthetic failure")
                   : host::runSweepCell(sweep, i, &cache);
    const Value agg = host::aggregateSweep(sweep, results);
    const auto &rows = agg.find("rows")->elements();
    ASSERT_EQ(rows.size(), 8u);
    EXPECT_EQ(rows[3].find("status")->asString(), "error");
    EXPECT_EQ(rows[3].find("message")->asString(),
              "synthetic failure");
    EXPECT_EQ(rows[4].find("status")->asString(), "ok");
    const std::string table = host::sweepTable(agg);
    EXPECT_NE(table.find("synthetic failure"), std::string::npos);
    EXPECT_NE(table.find("digest: "), std::string::npos);
}

} // namespace
} // namespace ssdrr

/**
 * @file
 * Tenant injection invariants: the closed-loop window never exceeds
 * its QD limit, every request completes, and open-loop injection
 * honours trace arrival order even when the queue pair backpressures.
 */

#include <gtest/gtest.h>

#include "host/array.hh"
#include "host/host_interface.hh"
#include "host/scenario.hh"
#include "host/tenant.hh"

namespace ssdrr::host {
namespace {

ssd::Config
testConfig()
{
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 6.0;
    cfg.seed = 7;
    return cfg;
}

workload::Trace
traceFor(const SsdArray &array, std::uint64_t requests,
         std::uint64_t seed)
{
    TenantSpec spec;
    spec.workload = "usr_1";
    spec.requests = requests;
    return makeTenantTrace(spec, array.logicalPages(), 0, 16 * 1024,
                           seed);
}

TEST(Tenant, ClosedLoopHonoursQdLimit)
{
    SsdArray array(testConfig(), core::Mechanism::Baseline, 1);
    array.precondition();
    HostInterface::Options hopt;
    hopt.queueDepth = 16;
    HostInterface hif(array, hopt);

    const std::uint32_t qd = 4;
    TenantOptions topt;
    topt.mode = InjectionMode::ClosedLoop;
    topt.qdLimit = qd;
    Tenant t("t0", traceFor(array, 200, 11), topt, hif);
    t.start();
    array.drain();

    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.completed(), 200u);
    EXPECT_EQ(t.inflight(), 0u);
    EXPECT_LE(t.maxInflightSeen(), qd)
        << "closed-loop window exceeded its QD limit";
    EXPECT_EQ(t.maxInflightSeen(), qd)
        << "a 200-request closed loop should fill its window";
    EXPECT_GT(t.stats().p50Us, 0.0);
    EXPECT_GE(t.stats().p99Us, t.stats().p50Us);
    EXPECT_GE(t.stats().p999Us, t.stats().p99Us);
}

TEST(Tenant, ClosedLoopQdCannotExceedQueueDepth)
{
    SsdArray array(testConfig(), core::Mechanism::NoRR, 1);
    array.precondition();
    HostInterface::Options hopt;
    hopt.queueDepth = 8;
    HostInterface hif(array, hopt);
    EXPECT_THROW(
        Tenant("bad", traceFor(array, 10, 3),
               InjectionMode::ClosedLoop, /*qd_limit=*/9, 1, hif),
        std::exception);
}

TEST(Tenant, OpenLoopCompletesEverythingUnderBackpressure)
{
    SsdArray array(testConfig(), core::Mechanism::Baseline, 1);
    array.precondition();
    // Tiny queue pair: open-loop arrivals must backlog and still all
    // complete once the device catches up.
    HostInterface::Options hopt;
    hopt.queueDepth = 2;
    hopt.maxDeviceInflight = 2;
    HostInterface hif(array, hopt);

    Tenant t("t0", traceFor(array, 150, 5), InjectionMode::OpenLoop,
             /*qd_limit=*/1, 1, hif);
    t.start();
    array.drain();

    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.completed(), 150u);
    EXPECT_EQ(t.inflight(), 0u);
    EXPECT_LE(t.maxInflightSeen(), 2u)
        << "in-flight can never exceed the queue-pair depth";
    const TenantStats s = t.stats();
    EXPECT_EQ(s.reads + s.writes, 150u);
}

} // namespace
} // namespace ssdrr::host

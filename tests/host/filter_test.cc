/**
 * @file
 * Unit tests for the host-side request filter chain
 * (src/host/filter/): per-filter behavior at its edges, the empty
 * chain's transparency, and the token bucket the throttle filter and
 * the queue-pair QoS path share.
 */

#include <gtest/gtest.h>

#include <vector>

#include "host/filter/filter.hh"
#include "host/filter/token_bucket.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace ssdrr::host::filter {
namespace {

/**
 * A chain wired between a scripted host and a fake array: everything
 * reaching the array endpoint is recorded (with its submit tick) and,
 * by default, completed back up the chain after a fixed latency.
 */
class ChainHarness
{
  public:
    explicit ChainHarness(const std::vector<FilterSpec> &specs,
                          double array_latency_us = 100.0)
        : array_latency_(sim::usec(array_latency_us))
    {
        Context ctx;
        ctx.eq = &eq;
        ctx.logicalPages = 1 << 20;
        ctx.pageBytes = kPageBytes;
        chain.build(specs, ctx);
        chain.bind(
            [this](const ssd::HostRequest &r) {
                submitted.push_back(r);
                submitTicks.push_back(eq.now());
                const sim::Tick done = eq.now() + array_latency_;
                eq.schedule(done, [this, r, done] {
                    chain.complete({r.id, r.arrival, done, r.isRead,
                                    sim::toUsec(done - r.arrival),
                                    r.pages});
                });
            },
            [this](const ssd::HostCompletion &c) {
                completed.push_back(c);
            });
    }

    void
    read(std::uint64_t id, std::uint64_t lpn, std::uint32_t pages = 1)
    {
        ssd::HostRequest r;
        r.id = id;
        r.arrival = eq.now();
        r.lpn = lpn;
        r.pages = pages;
        r.isRead = true;
        chain.submit(r);
    }

    void
    write(std::uint64_t id, std::uint64_t lpn, std::uint32_t pages = 1)
    {
        ssd::HostRequest r;
        r.id = id;
        r.arrival = eq.now();
        r.lpn = lpn;
        r.pages = pages;
        r.isRead = false;
        chain.submit(r);
    }

    /** Drain the event queue and return the collected counters. */
    ssd::RunStats
    runAndCollect()
    {
        eq.run();
        ssd::RunStats s;
        chain.collectStats(s);
        return s;
    }

    /** Count of array submissions for @p lpn (demand or prefetch). */
    std::size_t
    arrayReadsOf(std::uint64_t lpn) const
    {
        std::size_t n = 0;
        for (const ssd::HostRequest &r : submitted)
            if (r.isRead && r.lpn <= lpn && lpn < r.lpn + r.pages)
                ++n;
        return n;
    }

    static constexpr std::uint32_t kPageBytes = 16384;

    sim::EventQueue eq;
    FilterChain chain;
    std::vector<ssd::HostRequest> submitted;
    std::vector<sim::Tick> submitTicks;
    std::vector<ssd::HostCompletion> completed;

  private:
    sim::Tick array_latency_;
};

FilterSpec
cacheSpec(std::uint64_t pages, const std::string &eviction = "lru",
          const std::string &admission = "reads")
{
    FilterSpec f;
    f.type = "cache";
    f.sizeBytes = pages * ChainHarness::kPageBytes;
    f.eviction = eviction;
    f.admission = admission;
    f.hitLatencyUs = 2.0;
    return f;
}

// ---------------------------------------------------------------- empty

TEST(FilterChain, EmptyChainIsATransparentWire)
{
    ChainHarness h({});
    EXPECT_TRUE(h.chain.empty());
    h.read(1, 100, 2);
    ASSERT_EQ(h.submitted.size(), 1u);
    EXPECT_EQ(h.submitted[0].id, 1u);
    EXPECT_EQ(h.submitted[0].pages, 2u);
    const ssd::RunStats s = h.runAndCollect();
    ASSERT_EQ(h.completed.size(), 1u);
    EXPECT_EQ(h.completed[0].id, 1u);
    // The empty chain reports nothing: scenarios without filters are
    // bit-identical to the pre-chain engine, stats included.
    EXPECT_EQ(s.hostReads, 0u);
    EXPECT_EQ(s.cacheHits, 0u);
    EXPECT_EQ(s.cacheMisses, 0u);
}

// ---------------------------------------------------------------- cache

TEST(DramCacheFilter, MissFillsThenHitServesFromDram)
{
    ChainHarness h({cacheSpec(8)});
    h.read(1, 42);
    h.eq.run();
    ASSERT_EQ(h.completed.size(), 1u);
    const double miss_us = h.completed[0].responseUs;

    h.read(2, 42);
    const ssd::RunStats s = h.runAndCollect();
    ASSERT_EQ(h.completed.size(), 2u);
    EXPECT_EQ(h.completed[1].id, 2u);
    // The hit never reaches the array and completes at DRAM latency.
    EXPECT_EQ(h.arrayReadsOf(42), 1u);
    EXPECT_DOUBLE_EQ(h.completed[1].responseUs, 2.0);
    EXPECT_LT(h.completed[1].responseUs, miss_us);
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_EQ(s.cacheMisses, 1u);
    // Host-surface histogram saw both reads.
    EXPECT_EQ(s.hostReads, 2u);
}

TEST(DramCacheFilter, MultiPageReadHitsOnlyWhenFullyResident)
{
    ChainHarness h({cacheSpec(8)});
    h.read(1, 10); // fills page 10 only
    h.eq.run();
    h.read(2, 10, 2); // needs 10 and 11 -> miss
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(s.cacheHits, 0u);
    EXPECT_EQ(s.cacheMisses, 2u);
}

TEST(DramCacheFilter, LruEvictsColdestNotMostRecentlyTouched)
{
    ChainHarness h({cacheSpec(2)});
    h.read(1, 0);
    h.eq.run();
    h.read(2, 1);
    h.eq.run();
    h.read(3, 0); // hit: page 0 becomes most-recently-used
    h.eq.run();
    h.read(4, 2); // fill evicts LRU page 1, not page 0
    h.eq.run();
    h.read(5, 0);
    h.read(6, 1);
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(h.arrayReadsOf(0), 1u); // still resident after evict
    EXPECT_EQ(h.arrayReadsOf(1), 2u); // was evicted, refetched
    EXPECT_GE(s.cacheEvictions, 1u);
}

TEST(DramCacheFilter, FifoEvictsInsertionOrderDespiteTouches)
{
    ChainHarness h({cacheSpec(2, "fifo")});
    h.read(1, 0);
    h.eq.run();
    h.read(2, 1);
    h.eq.run();
    h.read(3, 0); // hit: FIFO ignores recency
    h.eq.run();
    h.read(4, 2); // evicts page 0 (oldest insertion)
    h.eq.run();
    h.read(5, 0);
    h.runAndCollect();
    EXPECT_EQ(h.arrayReadsOf(0), 2u); // evicted despite the touch
}

TEST(DramCacheFilter, WriteInvalidatesUnderReadsAdmission)
{
    ChainHarness h({cacheSpec(8, "lru", "reads")});
    h.read(1, 5);
    h.eq.run();
    h.write(2, 5);
    h.eq.run();
    h.read(3, 5); // stale copy was dropped -> must refetch
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(h.arrayReadsOf(5), 2u);
    EXPECT_EQ(s.cacheHits, 0u);
}

TEST(DramCacheFilter, AllAdmissionAllocatesOnWrite)
{
    ChainHarness h({cacheSpec(8, "lru", "all")});
    h.write(1, 5);
    h.eq.run();
    h.read(2, 5); // write-through copy serves the read
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(h.arrayReadsOf(5), 0u);
    EXPECT_EQ(s.cacheHits, 1u);
    // The write itself still reached the array (write-through).
    ASSERT_FALSE(h.submitted.empty());
    EXPECT_FALSE(h.submitted[0].isRead);
}

// ------------------------------------------------------------ readahead

TEST(ReadaheadFilter, SecondSequentialReadTriggersWindowPrefetch)
{
    FilterSpec f;
    f.type = "readahead";
    f.windowPages = 4;
    ChainHarness h({f});
    h.read(1, 10); // first touch: stream registered, no prefetch
    EXPECT_EQ(h.submitted.size(), 1u);
    h.read(2, 11); // continuation: prefetch 12..15
    ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(s.prefetchIssued, 4u); // counted in pages
    // The window goes down as one internal multi-page request, and
    // prefetches are absorbed on completion: the host sees exactly
    // its own two commands back.
    std::size_t internal = 0;
    for (const ssd::HostRequest &r : h.submitted)
        if (r.id & FilterChain::kInternalIdBit) {
            ++internal;
            EXPECT_EQ(r.lpn, 12u);
            EXPECT_EQ(r.pages, 4u);
        }
    EXPECT_EQ(internal, 1u);
    ASSERT_EQ(h.completed.size(), 2u);
    for (const ssd::HostCompletion &c : h.completed)
        EXPECT_FALSE(c.id & FilterChain::kInternalIdBit);

    // A demand read of a prefetched page counts as useful.
    h.read(3, 12);
    s = h.runAndCollect();
    EXPECT_GE(s.prefetchUseful, 1u);
}

TEST(ReadaheadFilter, RandomReadsNeverPrefetch)
{
    FilterSpec f;
    f.type = "readahead";
    f.windowPages = 4;
    ChainHarness h({f});
    h.read(1, 10);
    h.eq.run();
    h.read(2, 500);
    h.eq.run();
    h.read(3, 9000);
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(s.prefetchIssued, 0u);
    EXPECT_EQ(h.submitted.size(), 3u);
}

TEST(ReadaheadFilter, PrefetchClampsAtLogicalSpaceEnd)
{
    FilterSpec f;
    f.type = "readahead";
    f.windowPages = 8;
    ChainHarness h({f});
    const std::uint64_t last = (1 << 20) - 1;
    h.read(1, last - 1);
    h.eq.run();
    h.read(2, last); // window would run past the end of the space
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(s.prefetchIssued, 0u);
    for (const ssd::HostRequest &r : h.submitted)
        EXPECT_LT(r.lpn + r.pages - 1, std::uint64_t{1} << 20);
}

// ------------------------------------------------------- split/coalesce

TEST(SplitCoalesceFilter, LargeRequestSplitsAndReassembles)
{
    FilterSpec f;
    f.type = "split";
    f.maxPages = 2;
    ChainHarness h({f});
    h.read(1, 100, 8);
    const ssd::RunStats s = h.runAndCollect();
    // Four 2-page pieces under internal ids...
    ASSERT_EQ(h.submitted.size(), 4u);
    for (const ssd::HostRequest &r : h.submitted) {
        EXPECT_EQ(r.pages, 2u);
        EXPECT_TRUE(r.id & FilterChain::kInternalIdBit);
    }
    // ...reassembled into exactly one host completion.
    ASSERT_EQ(h.completed.size(), 1u);
    EXPECT_EQ(h.completed[0].id, 1u);
    EXPECT_EQ(h.completed[0].pages, 8u);
    EXPECT_EQ(s.splitRequests, 1u);
}

TEST(SplitCoalesceFilter, SmallRequestPassesVerbatim)
{
    FilterSpec f;
    f.type = "split";
    f.maxPages = 8;
    ChainHarness h({f});
    ssd::HostRequest r;
    r.id = 1;
    r.lpn = 7;
    r.pages = 8; // exactly at the boundary: no split
    r.isRead = true;
    r.channelMask = 0x5;
    h.chain.submit(r);
    const ssd::RunStats s = h.runAndCollect();
    ASSERT_EQ(h.submitted.size(), 1u);
    EXPECT_EQ(h.submitted[0].id, 1u);
    EXPECT_EQ(h.submitted[0].channelMask, 0x5u);
    EXPECT_EQ(s.splitRequests, 0u);
}

TEST(SplitCoalesceFilter, ContiguousReadsCoalesceWithinWindow)
{
    FilterSpec f;
    f.type = "split";
    f.maxPages = 8;
    f.coalesceWindowUs = 50.0;
    ChainHarness h({f});
    h.read(1, 10, 1);
    h.read(2, 11, 1); // contiguous successor inside the hold window
    const ssd::RunStats s = h.runAndCollect();
    // One merged 2-page array request, two host completions.
    ASSERT_EQ(h.submitted.size(), 1u);
    EXPECT_EQ(h.submitted[0].pages, 2u);
    ASSERT_EQ(h.completed.size(), 2u);
    EXPECT_EQ(s.coalescedRequests, 1u);
}

TEST(SplitCoalesceFilter, NonContiguousFlushesTheStagedRequest)
{
    FilterSpec f;
    f.type = "split";
    f.maxPages = 8;
    f.coalesceWindowUs = 50.0;
    ChainHarness h({f});
    h.read(1, 10, 1);
    h.read(2, 500, 1); // different run: staged request flushes
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_EQ(h.submitted.size(), 2u);
    EXPECT_EQ(h.completed.size(), 2u);
    EXPECT_EQ(s.coalescedRequests, 0u);
}

// ------------------------------------------------------------ delay

TEST(DelayFilter, DelaysOnlyTheConfiguredDirection)
{
    FilterSpec f;
    f.type = "delay";
    f.delayUs = 25.0;
    f.applies = "reads";
    ChainHarness h({f});
    h.read(1, 10);
    h.write(2, 20);
    EXPECT_EQ(h.submitted.size(), 1u); // write passed synchronously
    EXPECT_FALSE(h.submitted[0].isRead);
    const ssd::RunStats s = h.runAndCollect();
    ASSERT_EQ(h.submitted.size(), 2u);
    EXPECT_EQ(h.submitTicks[1], sim::usec(25.0));
    EXPECT_EQ(s.delayedRequests, 1u);
}

// ---------------------------------------------------------- throttle

TEST(ThrottleFilter, PacesBeyondTheBurst)
{
    FilterSpec f;
    f.type = "throttle";
    f.rateIops = 10000.0; // one token per 100 us
    f.burst = 1.0;
    ChainHarness h({f});
    h.read(1, 10);
    h.read(2, 20);
    h.read(3, 30);
    EXPECT_EQ(h.submitted.size(), 1u); // only the burst passes at t=0
    const ssd::RunStats s = h.runAndCollect();
    ASSERT_EQ(h.submitted.size(), 3u);
    EXPECT_GE(h.submitTicks[1], sim::usec(100.0));
    EXPECT_GE(h.submitTicks[2], sim::usec(200.0));
    EXPECT_EQ(s.throttledRequests, 2u);
    EXPECT_EQ(h.completed.size(), 3u);
}

// -------------------------------------------------------------- xfer

TEST(XferFilter, ChargesTransferOnBothEdges)
{
    FilterSpec f;
    f.type = "xfer";
    f.usPerKb = 1.0; // 16 us per 16-KiB page
    ChainHarness h({f}, /*array_latency_us=*/100.0);
    h.read(1, 10, 2); // 32 KiB -> 32 us per edge
    EXPECT_TRUE(h.submitted.empty()); // dispatch edge is deferred
    h.runAndCollect();
    ASSERT_EQ(h.submitted.size(), 1u);
    EXPECT_EQ(h.submitTicks[0], sim::usec(32.0));
    ASSERT_EQ(h.completed.size(), 1u);
    // End-to-end: dispatch xfer + array latency + completion xfer.
    EXPECT_DOUBLE_EQ(h.completed[0].responseUs, 32.0 + 100.0 + 32.0);
}

// ----------------------------------------------------------- stacking

TEST(FilterChain, ReadaheadAboveCacheFillsItForTheStream)
{
    FilterSpec ra;
    ra.type = "readahead";
    ra.windowPages = 4;
    ChainHarness h({ra, cacheSpec(64, "lru", "all")});
    h.read(1, 10);
    h.eq.run();
    h.read(2, 11); // triggers prefetch of 12..15 through the cache
    h.eq.run();
    h.read(3, 12); // the prefetched page is already in DRAM
    const ssd::RunStats s = h.runAndCollect();
    EXPECT_GE(s.cacheHits, 1u);
    EXPECT_GE(s.prefetchUseful, 1u);
    EXPECT_EQ(h.arrayReadsOf(12), 1u); // the prefetch, not the demand
    ASSERT_EQ(h.completed.size(), 3u);
}

// -------------------------------------------------------- token bucket

TEST(TokenBucket, UnconfiguredNeverLimits)
{
    TokenBucket b;
    EXPECT_FALSE(b.configured());
    b.configure(0.0, 0.0);
    EXPECT_FALSE(b.configured());
}

TEST(TokenBucket, StartsFullAndRefillsAtRate)
{
    TokenBucket b;
    b.configure(1000.0, 2.0); // 1 token/ms, depth 2
    ASSERT_TRUE(b.configured());
    EXPECT_TRUE(b.hasToken());
    b.consume();
    b.consume();
    EXPECT_FALSE(b.hasToken());
    b.refill(sim::usec(1000.0)); // 1 ms -> one token back
    EXPECT_TRUE(b.hasToken());
    b.consume();
    EXPECT_FALSE(b.hasToken());
    // Refill caps at the burst depth, never beyond.
    b.refill(sim::usec(100000.0));
    b.consume();
    b.consume();
    EXPECT_FALSE(b.hasToken());
}

TEST(TokenBucket, NextTokenTickLandsAfterTheShortfall)
{
    TokenBucket b;
    b.configure(1000.0, 1.0);
    b.consume();
    const sim::Tick next = b.nextTokenTick(0);
    EXPECT_GE(next, sim::usec(1000.0));
    b.refill(next);
    EXPECT_TRUE(b.hasToken());
}

} // namespace
} // namespace ssdrr::host::filter

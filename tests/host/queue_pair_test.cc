/**
 * @file
 * Queue-pair bookkeeping and command-fetch arbitration: depth bounds
 * posted+inflight, and the arbiter's RR/WRR grant sequences respect
 * the configured weights (fairness).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "host/queue_pair.hh"

namespace ssdrr::host {
namespace {

SqEntry
entry(std::uint32_t qid)
{
    SqEntry e;
    e.qid = qid;
    return e;
}

TEST(QueuePair, DepthBoundsPostedPlusInflight)
{
    QueuePair qp(0, 4);
    EXPECT_EQ(qp.freeSlots(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(qp.post(entry(0)));
    EXPECT_TRUE(qp.full());
    EXPECT_FALSE(qp.post(entry(0)));

    // Fetching moves a command from posted to inflight: still no
    // free slot until a completion arrives.
    qp.fetch();
    EXPECT_EQ(qp.posted(), 3u);
    EXPECT_EQ(qp.inflight(), 1u);
    EXPECT_TRUE(qp.full());
    EXPECT_FALSE(qp.post(entry(0)));

    qp.complete();
    EXPECT_EQ(qp.inflight(), 0u);
    EXPECT_EQ(qp.freeSlots(), 1u);
    EXPECT_TRUE(qp.post(entry(0)));
    EXPECT_EQ(qp.totalFetched(), 1u);
    EXPECT_EQ(qp.totalCompleted(), 1u);
}

TEST(QueuePair, FetchIsFifo)
{
    QueuePair qp(0, 3);
    for (std::uint64_t i = 0; i < 3; ++i) {
        SqEntry e = entry(0);
        e.req.id = 100 + i;
        ASSERT_TRUE(qp.post(e));
    }
    EXPECT_EQ(qp.fetch().req.id, 100u);
    EXPECT_EQ(qp.fetch().req.id, 101u);
    EXPECT_EQ(qp.fetch().req.id, 102u);
}

TEST(Arbitration, ParseNames)
{
    EXPECT_EQ(parseArbitration("rr"), Arbitration::RoundRobin);
    EXPECT_EQ(parseArbitration("wrr"), Arbitration::WeightedRoundRobin);
    EXPECT_EQ(parseArbitration("slo"), Arbitration::SloDeadline);
    EXPECT_STREQ(name(Arbitration::RoundRobin), "rr");
    EXPECT_STREQ(name(Arbitration::WeightedRoundRobin), "wrr");
    EXPECT_STREQ(name(Arbitration::SloDeadline), "slo");
    Arbitration a;
    EXPECT_FALSE(tryParseArbitration("edf", &a));
    EXPECT_TRUE(tryParseArbitration("slo", &a));
    EXPECT_EQ(a, Arbitration::SloDeadline);
}

TEST(QueuePair, TokenBucketGatesFetchability)
{
    QueueQos qos;
    qos.rateIops = 1000.0; // one token per millisecond
    qos.burst = 2.0;
    QueuePair qp(0, 8, 1, qos);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(qp.post(entry(0)));

    // The bucket starts full: the first burst of 2 is free.
    EXPECT_TRUE(qp.fetchable());
    qp.fetch();
    qp.fetch();
    EXPECT_FALSE(qp.fetchable()) << "bucket empty, must throttle";
    EXPECT_TRUE(qp.throttled());

    // Refill is deterministic in simulated time: after 1 ms exactly
    // one token is back.
    const sim::Tick wake = qp.nextTokenTick(0);
    EXPECT_GT(wake, 0u);
    EXPECT_LE(wake, sim::msec(1.1));
    qp.refill(sim::msec(1.0) + 2);
    EXPECT_TRUE(qp.fetchable());
    qp.fetch();
    EXPECT_TRUE(qp.throttled());

    // An unlimited queue never reports a token wake-up.
    QueuePair plain(1, 8);
    plain.post(entry(1));
    EXPECT_EQ(plain.nextTokenTick(0), sim::kTickNever);
    EXPECT_FALSE(plain.throttled());
}

TEST(Arbiter, SloDeadlinePicksMostUrgentThenBestEffort)
{
    std::vector<QueuePair> qps;
    QueueQos loose, tight;
    loose.sloUs = 1000.0;
    tight.sloUs = 100.0;
    qps.emplace_back(0, 4, 1, loose);
    qps.emplace_back(1, 4, 1, tight);
    qps.emplace_back(2, 4, 1); // best-effort
    for (auto &qp : qps)
        qp.post(entry(qp.qid())); // all posted at tick 0

    Arbiter arb(Arbitration::SloDeadline);
    // Tightest SLO first, then the looser one, then best-effort.
    EXPECT_EQ(arb.pick(qps), 1);
    qps[1].fetch();
    EXPECT_EQ(arb.pick(qps), 0);
    qps[0].fetch();
    EXPECT_EQ(arb.pick(qps), 2);
    qps[2].fetch();
    EXPECT_EQ(arb.pick(qps), -1);

    // All-best-effort ties degrade to round-robin (no starvation).
    std::vector<QueuePair> plain;
    plain.emplace_back(0, 4, 1);
    plain.emplace_back(1, 4, 1);
    Arbiter rr(Arbitration::SloDeadline);
    std::vector<int> seq;
    for (int i = 0; i < 4; ++i) {
        for (auto &qp : plain)
            while (!qp.full())
                qp.post(entry(qp.qid()));
        const int pick = rr.pick(plain);
        ASSERT_GE(pick, 0);
        plain[pick].fetch();
        plain[pick].complete();
        seq.push_back(pick);
    }
    EXPECT_NE(seq[0], seq[1]);
    EXPECT_NE(seq[1], seq[2]);
    EXPECT_NE(seq[2], seq[3]);
}

/** Keep every queue saturated and record the arbiter's grants. */
std::vector<int>
grantSequence(Arbiter &arb, std::vector<QueuePair> &qps, int n)
{
    std::vector<int> seq;
    for (int i = 0; i < n; ++i) {
        // Top up so no queue ever runs dry.
        for (auto &qp : qps)
            while (!qp.full())
                qp.post(entry(qp.qid()));
        const int pick = arb.pick(qps);
        EXPECT_GE(pick, 0);
        qps[pick].fetch();
        qps[pick].complete(); // free the slot immediately
        seq.push_back(pick);
    }
    return seq;
}

TEST(Arbiter, RoundRobinAlternates)
{
    std::vector<QueuePair> qps;
    qps.emplace_back(0, 4, 1);
    qps.emplace_back(1, 4, 1);
    qps.emplace_back(2, 4, 1);
    Arbiter arb(Arbitration::RoundRobin);
    const std::vector<int> seq = grantSequence(arb, qps, 9);
    for (std::size_t i = 3; i < seq.size(); ++i)
        EXPECT_NE(seq[i], seq[i - 1]) << "RR granted twice in a row";
    std::map<int, int> counts;
    for (int q : seq)
        ++counts[q];
    EXPECT_EQ(counts[0], 3);
    EXPECT_EQ(counts[1], 3);
    EXPECT_EQ(counts[2], 3);
}

TEST(Arbiter, WeightedRoundRobinRespectsWeights)
{
    // Weights 3:1 under saturation: exactly 3 grants to queue 0 per
    // grant to queue 1, in consecutive bursts.
    std::vector<QueuePair> qps;
    qps.emplace_back(0, 8, 3);
    qps.emplace_back(1, 8, 1);
    Arbiter arb(Arbitration::WeightedRoundRobin);
    const std::vector<int> seq = grantSequence(arb, qps, 16);
    std::map<int, int> counts;
    for (int q : seq)
        ++counts[q];
    EXPECT_EQ(counts[0], 12) << "weight-3 queue should get 3/4";
    EXPECT_EQ(counts[1], 4) << "weight-1 queue should get 1/4";
}

TEST(Arbiter, SkipsEmptyQueuesWithoutStarving)
{
    std::vector<QueuePair> qps;
    qps.emplace_back(0, 4, 4);
    qps.emplace_back(1, 4, 1);
    Arbiter arb(Arbitration::WeightedRoundRobin);

    // Only queue 1 has work: the arbiter must not spin on queue 0.
    qps[1].post(entry(1));
    EXPECT_EQ(arb.pick(qps), 1);
    qps[1].fetch();
    qps[1].complete();
    EXPECT_EQ(arb.pick(qps), -1) << "all queues empty";

    // Queue 0's weight does not let it lock queue 1 out: after its
    // burst of 4, queue 1 gets a grant.
    std::vector<int> seq;
    auto grant = [&] {
        const int pick = arb.pick(qps);
        ASSERT_GE(pick, 0);
        qps[pick].fetch();
        qps[pick].complete();
        seq.push_back(pick);
    };
    for (int i = 0; i < 4; ++i)
        qps[0].post(entry(0));
    grant(); // the arbiter settles on queue 0 and starts its burst
    qps[1].post(entry(1));
    for (int i = 0; i < 4; ++i)
        grant();
    EXPECT_EQ(seq, (std::vector<int>{0, 0, 0, 0, 1}));
}

} // namespace
} // namespace ssdrr::host

/**
 * @file
 * Queue-pair bookkeeping and command-fetch arbitration: depth bounds
 * posted+inflight, and the arbiter's RR/WRR grant sequences respect
 * the configured weights (fairness).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "host/queue_pair.hh"

namespace ssdrr::host {
namespace {

SqEntry
entry(std::uint32_t qid)
{
    SqEntry e;
    e.qid = qid;
    return e;
}

TEST(QueuePair, DepthBoundsPostedPlusInflight)
{
    QueuePair qp(0, 4);
    EXPECT_EQ(qp.freeSlots(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(qp.post(entry(0)));
    EXPECT_TRUE(qp.full());
    EXPECT_FALSE(qp.post(entry(0)));

    // Fetching moves a command from posted to inflight: still no
    // free slot until a completion arrives.
    qp.fetch();
    EXPECT_EQ(qp.posted(), 3u);
    EXPECT_EQ(qp.inflight(), 1u);
    EXPECT_TRUE(qp.full());
    EXPECT_FALSE(qp.post(entry(0)));

    qp.complete();
    EXPECT_EQ(qp.inflight(), 0u);
    EXPECT_EQ(qp.freeSlots(), 1u);
    EXPECT_TRUE(qp.post(entry(0)));
    EXPECT_EQ(qp.totalFetched(), 1u);
    EXPECT_EQ(qp.totalCompleted(), 1u);
}

TEST(QueuePair, FetchIsFifo)
{
    QueuePair qp(0, 3);
    for (std::uint64_t i = 0; i < 3; ++i) {
        SqEntry e = entry(0);
        e.req.id = 100 + i;
        ASSERT_TRUE(qp.post(e));
    }
    EXPECT_EQ(qp.fetch().req.id, 100u);
    EXPECT_EQ(qp.fetch().req.id, 101u);
    EXPECT_EQ(qp.fetch().req.id, 102u);
}

TEST(Arbitration, ParseNames)
{
    EXPECT_EQ(parseArbitration("rr"), Arbitration::RoundRobin);
    EXPECT_EQ(parseArbitration("wrr"), Arbitration::WeightedRoundRobin);
    EXPECT_STREQ(name(Arbitration::RoundRobin), "rr");
    EXPECT_STREQ(name(Arbitration::WeightedRoundRobin), "wrr");
}

/** Keep every queue saturated and record the arbiter's grants. */
std::vector<int>
grantSequence(Arbiter &arb, std::vector<QueuePair> &qps, int n)
{
    std::vector<int> seq;
    for (int i = 0; i < n; ++i) {
        // Top up so no queue ever runs dry.
        for (auto &qp : qps)
            while (!qp.full())
                qp.post(entry(qp.qid()));
        const int pick = arb.pick(qps);
        EXPECT_GE(pick, 0);
        qps[pick].fetch();
        qps[pick].complete(); // free the slot immediately
        seq.push_back(pick);
    }
    return seq;
}

TEST(Arbiter, RoundRobinAlternates)
{
    std::vector<QueuePair> qps;
    qps.emplace_back(0, 4, 1);
    qps.emplace_back(1, 4, 1);
    qps.emplace_back(2, 4, 1);
    Arbiter arb(Arbitration::RoundRobin);
    const std::vector<int> seq = grantSequence(arb, qps, 9);
    for (std::size_t i = 3; i < seq.size(); ++i)
        EXPECT_NE(seq[i], seq[i - 1]) << "RR granted twice in a row";
    std::map<int, int> counts;
    for (int q : seq)
        ++counts[q];
    EXPECT_EQ(counts[0], 3);
    EXPECT_EQ(counts[1], 3);
    EXPECT_EQ(counts[2], 3);
}

TEST(Arbiter, WeightedRoundRobinRespectsWeights)
{
    // Weights 3:1 under saturation: exactly 3 grants to queue 0 per
    // grant to queue 1, in consecutive bursts.
    std::vector<QueuePair> qps;
    qps.emplace_back(0, 8, 3);
    qps.emplace_back(1, 8, 1);
    Arbiter arb(Arbitration::WeightedRoundRobin);
    const std::vector<int> seq = grantSequence(arb, qps, 16);
    std::map<int, int> counts;
    for (int q : seq)
        ++counts[q];
    EXPECT_EQ(counts[0], 12) << "weight-3 queue should get 3/4";
    EXPECT_EQ(counts[1], 4) << "weight-1 queue should get 1/4";
}

TEST(Arbiter, SkipsEmptyQueuesWithoutStarving)
{
    std::vector<QueuePair> qps;
    qps.emplace_back(0, 4, 4);
    qps.emplace_back(1, 4, 1);
    Arbiter arb(Arbitration::WeightedRoundRobin);

    // Only queue 1 has work: the arbiter must not spin on queue 0.
    qps[1].post(entry(1));
    EXPECT_EQ(arb.pick(qps), 1);
    qps[1].fetch();
    qps[1].complete();
    EXPECT_EQ(arb.pick(qps), -1) << "all queues empty";

    // Queue 0's weight does not let it lock queue 1 out: after its
    // burst of 4, queue 1 gets a grant.
    std::vector<int> seq;
    auto grant = [&] {
        const int pick = arb.pick(qps);
        ASSERT_GE(pick, 0);
        qps[pick].fetch();
        qps[pick].complete();
        seq.push_back(pick);
    };
    for (int i = 0; i < 4; ++i)
        qps[0].post(entry(0));
    grant(); // the arbiter settles on queue 0 and starts its burst
    qps[1].post(entry(1));
    for (int i = 0; i < 4; ++i)
        grant();
    EXPECT_EQ(seq, (std::vector<int>{0, 0, 0, 0, 1}));
}

} // namespace
} // namespace ssdrr::host

/**
 * @file
 * ArrayLayout unit tests: RAID-0 plans bit-identical to the legacy
 * hard-wired split, RAID-5 placement/parity-rotation invariants,
 * read-modify-write and reconstruction fan-out plans, and the
 * capacity helper shared with scenario validation.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "host/array_layout.hh"

namespace ssdrr::host {
namespace {

using Plan = ArrayLayout::Plan;
using SubOp = ArrayLayout::SubOp;
using OpClass = ArrayLayout::OpClass;

TEST(RaidLevel, ParseAndName)
{
    RaidLevel level;
    EXPECT_TRUE(tryParseRaidLevel("raid0", &level));
    EXPECT_EQ(level, RaidLevel::Raid0);
    EXPECT_TRUE(tryParseRaidLevel("raid5", &level));
    EXPECT_EQ(level, RaidLevel::Raid5);
    EXPECT_FALSE(tryParseRaidLevel("raid6", nullptr));
    EXPECT_STREQ(name(RaidLevel::Raid0), "raid0");
    EXPECT_STREQ(name(RaidLevel::Raid5), "raid5");
}

/**
 * The exact split the pre-layout SsdArray computed inline: per-drive
 * (first local LPN, page count) over g % N striping, subrequests in
 * drive order. Raid0Layout must reproduce it op for op.
 */
std::vector<SubOp>
legacyReferenceSplit(std::uint32_t drives, std::uint64_t lpn,
                     std::uint32_t pages, bool is_read)
{
    std::vector<std::uint64_t> first(drives, 0);
    std::vector<std::uint32_t> count(drives, 0);
    for (std::uint32_t i = 0; i < pages; ++i) {
        const std::uint64_t g = lpn + i;
        const auto d = static_cast<std::uint32_t>(g % drives);
        if (count[d]++ == 0)
            first[d] = g / drives;
    }
    std::vector<SubOp> ops;
    for (std::uint32_t d = 0; d < drives; ++d) {
        if (count[d] == 0)
            continue;
        ops.push_back({d, first[d], count[d], is_read,
                       OpClass::Data});
    }
    return ops;
}

void
expectSameOps(const std::vector<SubOp> &a, const std::vector<SubOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].drive, b[i].drive) << "op " << i;
        EXPECT_EQ(a[i].lpn, b[i].lpn) << "op " << i;
        EXPECT_EQ(a[i].pages, b[i].pages) << "op " << i;
        EXPECT_EQ(a[i].isRead, b[i].isRead) << "op " << i;
        EXPECT_EQ(a[i].cls, b[i].cls) << "op " << i;
    }
}

TEST(Raid0Layout, MatchesLegacySplitBitForBit)
{
    // Sweep every (drives, lpn, pages, op) combination a small array
    // sees: the layout path must be indistinguishable from the
    // legacy inline arithmetic.
    for (std::uint32_t drives : {1u, 2u, 3u, 5u}) {
        Raid0Layout layout(drives);
        EXPECT_EQ(layout.logicalPages(1000), 1000u * drives);
        EXPECT_EQ(layout.faultTolerance(), 0u);
        Plan plan;
        for (std::uint64_t lpn = 0; lpn < 2 * drives + 3; ++lpn) {
            for (std::uint32_t pages = 1; pages <= 2 * drives + 2;
                 ++pages) {
                for (bool is_read : {true, false}) {
                    layout.plan(lpn, pages, is_read, plan);
                    EXPECT_FALSE(plan.degraded);
                    EXPECT_TRUE(plan.writes.empty());
                    expectSameOps(plan.ops,
                                  legacyReferenceSplit(
                                      drives, lpn, pages, is_read));
                }
            }
        }
    }
}

TEST(Raid0Layout, LocateMatchesModuloStriping)
{
    Raid0Layout layout(3);
    for (std::uint64_t g = 0; g < 30; ++g) {
        const auto loc = layout.locate(g);
        EXPECT_EQ(loc.drive, g % 3);
        EXPECT_EQ(loc.lpn, g / 3);
    }
}

TEST(Raid5Layout, CapacityExcludesParityAndPartialRows)
{
    Raid5Layout l4(4, 4, {});
    // 100 local pages at unit 4 -> 25 rows, 3 data units per row.
    EXPECT_EQ(l4.logicalPages(100), 100u / 4 * 4 * 3);
    EXPECT_EQ(l4.faultTolerance(), 1u);
    // Partial trailing rows are dropped: 102 local pages still give
    // 25 full rows.
    EXPECT_EQ(l4.logicalPages(102), 100u / 4 * 4 * 3);
    EXPECT_EQ(arrayLogicalPages(RaidLevel::Raid5, 4, 4, 102),
              l4.logicalPages(102));
    EXPECT_EQ(arrayLogicalPages(RaidLevel::Raid0, 4, 1, 102),
              4u * 102);
}

TEST(Raid5Layout, ParityRotatesAcrossAllDrives)
{
    const std::uint32_t n = 4;
    Raid5Layout layout(n, 2, {});
    std::set<std::uint32_t> parity_drives;
    for (std::uint64_t row = 0; row < n; ++row)
        parity_drives.insert(layout.parityDriveOfRow(row));
    // Over one rotation period every drive holds parity exactly once.
    EXPECT_EQ(parity_drives.size(), n);
    EXPECT_EQ(layout.parityDriveOfRow(0),
              layout.parityDriveOfRow(n));
}

TEST(Raid5Layout, LocateIsInjectiveAndAvoidsParityDrives)
{
    const std::uint32_t n = 4, unit = 3;
    Raid5Layout layout(n, unit, {});
    const std::uint64_t capacity = layout.logicalPages(24);
    std::set<std::pair<std::uint32_t, std::uint64_t>> used;
    for (std::uint64_t g = 0; g < capacity; ++g) {
        const auto loc = layout.locate(g);
        EXPECT_LT(loc.drive, n);
        // Data never lands on its row's parity drive.
        EXPECT_NE(loc.drive,
                  layout.parityDriveOfRow(loc.lpn / unit));
        // No two data pages share a physical slot.
        EXPECT_TRUE(used.emplace(loc.drive, loc.lpn).second)
            << "duplicate placement of global LPN " << g;
    }
    // Together with injectivity this means data + parity tile the
    // used rows exactly: per row, n-1 data units and 1 parity unit.
    EXPECT_EQ(used.size(), capacity);
}

TEST(Raid5Layout, HealthyReadFansOutToDataDrivesOnly)
{
    Raid5Layout layout(4, 1, {});
    Plan plan;
    // Three consecutive pages at unit 1 are one full stripe row.
    layout.plan(0, 3, true, plan);
    EXPECT_FALSE(plan.degraded);
    EXPECT_TRUE(plan.writes.empty());
    ASSERT_EQ(plan.ops.size(), 3u);
    const std::uint32_t parity = layout.parityDriveOfRow(0);
    for (const SubOp &op : plan.ops) {
        EXPECT_TRUE(op.isRead);
        EXPECT_EQ(op.cls, OpClass::Data);
        EXPECT_NE(op.drive, parity);
        EXPECT_EQ(op.lpn, 0u);
    }
}

TEST(Raid5Layout, DegradedReadReconstructsFromSurvivors)
{
    const std::uint32_t n = 4;
    Raid5Layout layout(n, 2, {1});
    EXPECT_TRUE(layout.isFailed(1));

    // Find a data page living on the failed drive.
    std::uint64_t g = 0;
    const std::uint64_t capacity = layout.logicalPages(32);
    while (g < capacity && layout.locate(g).drive != 1)
        ++g;
    ASSERT_LT(g, capacity);
    const auto loc = layout.locate(g);

    Plan plan;
    layout.plan(g, 1, true, plan);
    EXPECT_TRUE(plan.degraded);
    EXPECT_TRUE(plan.writes.empty());
    // One Rebuild read per surviving drive (data mates and the
    // parity chunk alike), all at the lost page's local LPN.
    ASSERT_EQ(plan.ops.size(), n - 1);
    std::set<std::uint32_t> drives_hit;
    for (const SubOp &op : plan.ops) {
        EXPECT_TRUE(op.isRead);
        EXPECT_NE(op.drive, 1u);
        EXPECT_EQ(op.lpn, loc.lpn);
        EXPECT_EQ(op.pages, 1u);
        EXPECT_EQ(op.cls, OpClass::Rebuild);
        drives_hit.insert(op.drive);
    }
    EXPECT_EQ(drives_hit.size(), n - 1);
}

TEST(Raid5Layout, WriteIsReadModifyWrite)
{
    Raid5Layout layout(4, 1, {});
    Plan plan;
    layout.plan(0, 1, false, plan);
    EXPECT_FALSE(plan.degraded);
    const auto loc = layout.locate(0);
    const std::uint32_t parity = layout.parityDriveOfRow(0);
    // Phase 1 pre-reads old data + old parity; phase 2 writes both
    // back.
    ASSERT_EQ(plan.ops.size(), 2u);
    EXPECT_EQ(plan.ops[0].drive, loc.drive);
    EXPECT_TRUE(plan.ops[0].isRead);
    EXPECT_EQ(plan.ops[0].cls, OpClass::Data);
    EXPECT_EQ(plan.ops[1].drive, parity);
    EXPECT_TRUE(plan.ops[1].isRead);
    EXPECT_EQ(plan.ops[1].cls, OpClass::Parity);
    ASSERT_EQ(plan.writes.size(), 2u);
    EXPECT_EQ(plan.writes[0].drive, loc.drive);
    EXPECT_FALSE(plan.writes[0].isRead);
    EXPECT_EQ(plan.writes[1].drive, parity);
    EXPECT_EQ(plan.writes[1].cls, OpClass::Parity);
}

TEST(Raid5Layout, SharedParityPageIsDeduplicated)
{
    // At unit 1, consecutive global pages are stripe mates of one
    // row and share the row's (page-aligned) parity page: writing
    // two of them must pre-read and update that parity page once.
    Raid5Layout layout(4, 1, {});
    Plan plan;
    layout.plan(0, 2, false, plan);
    ASSERT_EQ(plan.ops.size(), 3u);    // 2 data reads + 1 parity read
    ASSERT_EQ(plan.writes.size(), 3u); // 2 data writes + 1 parity
    int parity_reads = 0, parity_writes = 0;
    for (const SubOp &op : plan.ops)
        parity_reads += op.cls == OpClass::Parity;
    for (const SubOp &op : plan.writes)
        parity_writes += op.cls == OpClass::Parity;
    EXPECT_EQ(parity_reads, 1);
    EXPECT_EQ(parity_writes, 1);
}

TEST(Raid5Layout, WriteToFailedDataDriveReconstructs)
{
    const std::uint32_t n = 4;
    Raid5Layout layout(n, 1, {2});
    std::uint64_t g = 0;
    while (layout.locate(g).drive != 2)
        ++g;
    const auto loc = layout.locate(g);
    const std::uint32_t parity = layout.parityDriveOfRow(loc.lpn);

    Plan plan;
    layout.plan(g, 1, false, plan);
    EXPECT_TRUE(plan.degraded);
    // Pre-read the surviving data mates (not the parity drive), then
    // write parity alone — the lost chunk is implied.
    ASSERT_EQ(plan.ops.size(), n - 2);
    for (const SubOp &op : plan.ops) {
        EXPECT_TRUE(op.isRead);
        EXPECT_EQ(op.cls, OpClass::Rebuild);
        EXPECT_NE(op.drive, 2u);
        EXPECT_NE(op.drive, parity);
    }
    ASSERT_EQ(plan.writes.size(), 1u);
    EXPECT_EQ(plan.writes[0].drive, parity);
    EXPECT_EQ(plan.writes[0].cls, OpClass::Parity);
    EXPECT_FALSE(plan.writes[0].isRead);
}

TEST(Raid5Layout, WriteWithFailedParityDriveSkipsParity)
{
    const std::uint32_t n = 4;
    Raid5Layout layout(n, 1, {3});
    // Row 0's parity lives on drive n-1 = 3 (the failed drive).
    ASSERT_EQ(layout.parityDriveOfRow(0), 3u);
    Plan plan;
    layout.plan(0, 1, false, plan);
    EXPECT_FALSE(plan.degraded);
    // Nothing to pre-read: the data write is the whole plan.
    EXPECT_TRUE(plan.ops.empty());
    ASSERT_EQ(plan.writes.size(), 1u);
    EXPECT_EQ(plan.writes[0].cls, OpClass::Data);
    EXPECT_FALSE(plan.writes[0].isRead);
    EXPECT_NE(plan.writes[0].drive, 3u);
}

TEST(Raid5Layout, ContiguousChunkReadsMergeIntoRuns)
{
    // A whole stripe unit on one drive is one subrequest, not
    // unit-many single-page ops.
    Raid5Layout layout(4, 4, {});
    Plan plan;
    layout.plan(0, 4, true, plan);
    ASSERT_EQ(plan.ops.size(), 1u);
    EXPECT_EQ(plan.ops[0].pages, 4u);
}

TEST(Raid5Layout, InterleavedRunsStillMergePerDrive)
{
    // The page walk interleaves drives (data, parity, data,
    // parity, ...); runs must merge per drive anyway.
    Raid5Layout layout(4, 4, {});
    Plan plan;
    // Whole-unit write: one 4-page data run + one 4-page parity run
    // in each phase, not 8 single-page ops.
    layout.plan(0, 4, false, plan);
    ASSERT_EQ(plan.ops.size(), 2u);
    EXPECT_EQ(plan.ops[0].pages, 4u);
    EXPECT_EQ(plan.ops[1].pages, 4u);
    ASSERT_EQ(plan.writes.size(), 2u);
    EXPECT_EQ(plan.writes[0].pages, 4u);
    EXPECT_EQ(plan.writes[1].pages, 4u);

    // Whole-unit degraded read: one 4-page run per survivor.
    Raid5Layout degraded(4, 4, {1});
    std::uint64_t g = 0;
    while (degraded.locate(g).drive != 1)
        g += 4;
    degraded.plan(g, 4, true, plan);
    ASSERT_EQ(plan.ops.size(), 3u);
    for (const SubOp &op : plan.ops)
        EXPECT_EQ(op.pages, 4u);
}

TEST(Raid5Layout, RejectsInvalidConfigurations)
{
    EXPECT_THROW(Raid5Layout(2, 1, {}), std::logic_error);
    EXPECT_THROW(Raid5Layout(4, 0, {}), std::logic_error);
    EXPECT_THROW(Raid5Layout(4, 1, {4}), std::logic_error);
    EXPECT_THROW(Raid5Layout(4, 1, {0, 1}), std::logic_error);
    EXPECT_THROW(
        makeArrayLayout(RaidLevel::Raid0, 2, 1, {0}),
        std::logic_error);
}

} // namespace
} // namespace ssdrr::host

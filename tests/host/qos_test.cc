/**
 * @file
 * Integration tests for the scenario API v2 capabilities, each
 * demonstrating an observable end-to-end effect:
 *
 *  - token-bucket rate limiting caps a tenant's achieved throughput
 *    (and stretches the run accordingly);
 *  - SLO-aware arbitration protects an SLO-bound tenant's tail
 *    against an aggressive best-effort neighbour;
 *  - channel affinity pins a tenant's traffic to its channel subset
 *    and isolates a neighbour from its retry storm;
 *  - a time horizon bounds an open-loop run by simulated time, not
 *    request count (the trace wraps as often as needed).
 */

#include <gtest/gtest.h>

#include "host/scenario_spec.hh"

namespace ssdrr::host {
namespace {

TEST(TokenBucket, CapsAchievedThroughput)
{
    // One closed-loop tenant that could easily run at tens of
    // thousands of IOPS against a fresh drive; throttle it to 5000.
    const double rate = 5000.0;
    ScenarioBuilder throttled;
    throttled.seed(5).mechanism(core::Mechanism::NoRR)
        .tenant("t", "usr_1", 300)
        .rateIops(rate)
        .burst(4.0);
    const ScenarioResult limited = runScenario(
        throttled.build(), core::Mechanism::NoRR);

    ScenarioBuilder open;
    open.seed(5).mechanism(core::Mechanism::NoRR)
        .tenant("t", "usr_1", 300);
    const ScenarioResult unlimited =
        runScenario(open.build(), core::Mechanism::NoRR);

    ASSERT_EQ(limited.tenants[0].completed, 300u);
    ASSERT_EQ(unlimited.tenants[0].completed, 300u);
    const double got = limited.tenants[0].achievedIops;
    EXPECT_GT(got, 0.0);
    EXPECT_LE(got, rate * 1.05)
        << "token bucket must cap throughput at the refill rate";
    EXPECT_GT(unlimited.tenants[0].achievedIops, rate * 2.0)
        << "the unthrottled twin should blow well past the cap "
           "(otherwise this test proves nothing)";
    // 300 requests at <= 5000/s is >= 60 ms of simulated time.
    EXPECT_GE(limited.array.simulatedMs, 55.0);
    EXPECT_LT(unlimited.array.simulatedMs,
              limited.array.simulatedMs / 2.0);
}

TEST(SloArbitration, ProtectsSloTenantTail)
{
    // A latency-sensitive reader with a tight SLO against an
    // aggressive deep-window neighbour, on one worn drive with few
    // controller command slots — the regime where command-fetch
    // arbitration gates latency. Under "slo" arbitration the
    // reader's commands are fetched first whenever it is behind, so
    // its p99 must undercut the best-effort neighbour's and its own
    // "rr" tail, where the batch tenant's backlog fills the slots.
    auto build = [](const std::string &arb, double slo_us) {
        ScenarioBuilder b;
        b.pec(1.0).retention(6.0).seed(11).queueDepth(16)
            .maxDeviceInflight(4)
            .arbitration(arb)
            .mechanism(core::Mechanism::Baseline)
            .tenant("latency", "YCSB-C", 300)
            .qdLimit(4)
            .tenant("batch", "usr_1", 300)
            .qdLimit(16);
        if (slo_us > 0.0) {
            // SLO on the first tenant.
            ScenarioSpec spec = b.peek();
            spec.tenants[0].sloUs = slo_us;
            spec.validate();
            return spec;
        }
        return b.build();
    };

    const ScenarioResult slo =
        runScenario(build("slo", 400.0), core::Mechanism::Baseline);
    const ScenarioResult rr =
        runScenario(build("rr", 0.0), core::Mechanism::Baseline);

    ASSERT_EQ(slo.tenants[0].completed, 300u);
    ASSERT_EQ(slo.tenants[1].completed, 300u);
    EXPECT_LT(slo.tenants[0].p99Us, slo.tenants[1].p99Us)
        << "the SLO-bound tenant must see a better tail than its "
           "best-effort neighbour";
    EXPECT_LT(slo.tenants[0].p99Us, rr.tenants[0].p99Us)
        << "slo arbitration should beat rr for the SLO tenant";
}

TEST(ChannelAffinity, PinsAllTrafficToTheMask)
{
    // Single drive, one tenant pinned to channel 0. Build the
    // pinned trace exactly as runScenario does and drive the array
    // directly so the member drive stays inspectable: after the
    // run, channels 1..3 must never have carried a transaction.
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 6.0;
    cfg.seed = 3;
    const std::uint32_t mask = 0x1;

    SsdArray array(cfg, core::Mechanism::Baseline, 1);
    array.precondition();
    HostInterface hif(array, {});

    TenantSpec ts;
    ts.workload = "usr_1"; // reads AND writes (exercises the FTL)
    ts.requests = 400;
    const std::uint64_t lattice = channelLatticePages(
        0, array.logicalPages(), 1, cfg.layout(), mask);
    ASSERT_GT(lattice, 0u);
    workload::Trace trace = applyChannelAffinity(
        makeTenantTrace(ts, lattice, 0, cfg.pageBytes, 77), 0,
        array.logicalPages(), 1, cfg.layout(), mask);

    TenantOptions topt;
    topt.channelMask = mask;
    Tenant t("pinned", std::move(trace), topt, hif);
    t.start();
    array.drain();

    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.completed(), 400u);
    const ssd::Ssd &drive = array.drive(0);
    EXPECT_GT(drive.channelAt(0).grants(), 0u);
    for (std::uint32_t c = 1; c < cfg.channels; ++c)
        EXPECT_EQ(drive.channelAt(c).grants(), 0u)
            << "channel " << c
            << " carried traffic despite the affinity mask";

    // The mapping stayed on channel 0 even after writes + GC:
    // spot-check the lattice's first pages.
    ssd::Ssd &d = array.drive(0);
    const ftl::AddressLayout layout = cfg.layout();
    for (std::uint64_t lpn = 0; lpn < 64; ++lpn) {
        const std::uint64_t g =
            lpn / layout.planesPerChannel() *
                layout.totalPlanes() +
            lpn % layout.planesPerChannel();
        if (g >= array.logicalPages())
            break;
        if (!d.ftl().map().mapped(g))
            continue;
        EXPECT_EQ(layout.channelOf(d.ftl().translate(g)), 0u);
    }
}

TEST(ChannelAffinity, IsolatesNeighbourFromRetryStorm)
{
    // Tenant "storm" hammers a worn drive with retry-heavy reads;
    // tenant "victim" shares it. When each is pinned to its own
    // channel pair, the victim stops queueing behind the storm's
    // retries, so its p99 must drop versus the shared run.
    auto build = [](bool isolate) {
        ScenarioBuilder b;
        b.pec(2.0).retention(12.0).seed(17).queueDepth(16)
            .mechanism(core::Mechanism::Baseline)
            .tenant("storm", "usr_1", 400)
            .qdLimit(16)
            .tenant("victim", "YCSB-C", 400)
            .qdLimit(8);
        if (isolate) {
            ScenarioSpec spec = b.peek();
            spec.tenants[0].channelMask = 0x3; // channels {0,1}
            spec.tenants[1].channelMask = 0xc; // channels {2,3}
            spec.validate();
            return spec;
        }
        return b.build();
    };
    const ScenarioResult shared =
        runScenario(build(false), core::Mechanism::Baseline);
    const ScenarioResult isolated =
        runScenario(build(true), core::Mechanism::Baseline);

    ASSERT_EQ(isolated.tenants[1].completed, 400u);
    EXPECT_LT(isolated.tenants[1].p99Us, shared.tenants[1].p99Us)
        << "pinning the storm to its own channels must improve the "
           "victim's tail";
}

TEST(TimeHorizon, BoundsRunBySimulatedTime)
{
    // 100-request trace at ~2000 IOPS spans ~50 ms; a 200 ms horizon
    // must wrap it (completed >> requests) and stop on time.
    const double horizon_us = 200000.0;
    ScenarioBuilder b;
    b.seed(23).mechanism(core::Mechanism::NoRR)
        .tenant("steady", "usr_1", 100)
        .openLoop()
        .horizonUs(horizon_us);
    const ScenarioResult res =
        runScenario(b.build(), core::Mechanism::NoRR);

    const std::uint64_t done = res.tenants[0].completed;
    EXPECT_GT(done, 100u)
        << "the trace must wrap past its request count";
    // Open-loop arrivals stop strictly before the horizon...
    EXPECT_GE(res.array.simulatedMs, 0.8 * horizon_us / 1000.0);
    // ...and the drain after it is bounded by device latency.
    EXPECT_LE(res.array.simulatedMs, 1.5 * horizon_us / 1000.0);
    // Arrival rate ~2000/s for 0.2 s => ~400 requests.
    EXPECT_NEAR(static_cast<double>(done), 400.0, 120.0);

    // The same tenant without a horizon replays the trace once.
    ScenarioBuilder once;
    once.seed(23).mechanism(core::Mechanism::NoRR)
        .tenant("steady", "usr_1", 100)
        .openLoop();
    const ScenarioResult plain =
        runScenario(once.build(), core::Mechanism::NoRR);
    EXPECT_EQ(plain.tenants[0].completed, 100u);
    EXPECT_LT(plain.array.simulatedMs, res.array.simulatedMs);
}

} // namespace
} // namespace ssdrr::host

/**
 * @file
 * Tests that the SSD's configured ECC capability actually governs
 * the retry behaviour end to end (weaker code -> more retry steps),
 * including the failure-injection path where pages become
 * unreadable.
 */

#include <gtest/gtest.h>

#include "ssd/ssd.hh"

namespace ssdrr::ssd {
namespace {

Config
capConfig(double capability)
{
    Config c = Config::small();
    c.eccCapability = capability;
    c.basePeKilo = 1.0;
    c.baseRetentionMonths = 6.0;
    return c;
}

double
avgStepsWith(double capability)
{
    Ssd ssd(capConfig(capability), core::Mechanism::Baseline);
    ssd.ftl().precondition();
    for (std::uint64_t i = 0; i < 48; ++i) {
        HostRequest req;
        req.id = i + 1;
        req.lpn = i * 11;
        req.pages = 1;
        req.isRead = true;
        ssd.submit(req);
    }
    ssd.drain();
    return ssd.stats().avgRetrySteps;
}

TEST(EccCapability, WeakerCodeNeedsMoreRetrySteps)
{
    // A stronger code stops the walk a step early (step N-1 carries
    // ~76 errors, below a 110-bit capability); a code weaker than
    // the final-step error floor (~30 errors at this condition)
    // cannot finish some walks at all and pays the full table.
    const double strong = avgStepsWith(110.0);
    const double paper = avgStepsWith(72.0);
    const double weak = avgStepsWith(25.0);
    EXPECT_LT(strong, paper);
    EXPECT_LT(paper, weak);
}

TEST(EccCapability, ModelAndEngineAgree)
{
    const Config c = capConfig(50.0);
    Ssd ssd(c, core::Mechanism::Baseline);
    EXPECT_DOUBLE_EQ(ssd.errorModel().cal().eccCapability, 50.0);
}

TEST(EccCapability, RptShrinksWithWeakerCode)
{
    // The AR2 budget is (capability - margin - M_ERR): a weaker code
    // must profile smaller (or zero) reductions.
    Ssd strong(capConfig(100.0), core::Mechanism::AR2);
    Ssd weak(capConfig(52.0), core::Mechanism::AR2);
    double sum_strong = 0.0, sum_weak = 0.0;
    for (std::size_t pe = 0; pe < strong.rpt().peBins(); ++pe) {
        for (std::size_t rt = 0; rt < strong.rpt().retBins(); ++rt) {
            sum_strong += strong.rpt().entryAt(pe, rt);
            sum_weak += weak.rpt().entryAt(pe, rt);
        }
    }
    EXPECT_GT(sum_strong, sum_weak);
}

TEST(EccCapability, HopelessCodeInjectsReadFailures)
{
    // Failure injection: with a code weaker than the final-step
    // error floor, some pages can never be read; the SSD must report
    // them as failures and keep running (higher-level RAID territory).
    Config c = capConfig(12.0);
    c.baseRetentionMonths = 12.0;
    c.basePeKilo = 2.0;
    Ssd ssd(c, core::Mechanism::Baseline);
    ssd.ftl().precondition();
    for (std::uint64_t i = 0; i < 32; ++i) {
        HostRequest req;
        req.id = i + 1;
        req.lpn = i * 7;
        req.pages = 1;
        req.isRead = true;
        ssd.submit(req);
    }
    ssd.drain();
    const RunStats st = ssd.stats();
    EXPECT_EQ(st.reads, 32u) << "requests still complete";
    EXPECT_GT(st.readFailures, 0u) << "unreadable pages are reported";
    EXPECT_GT(st.avgRetrySteps, 30.0)
        << "failed reads walked most of the retry table";
}

} // namespace
} // namespace ssdrr::ssd

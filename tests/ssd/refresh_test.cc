/**
 * @file
 * Tests for the read-reclaim refresh policy (the refresh-based
 * read-retry mitigation of Section 9 [14, 15, 28]).
 */

#include <gtest/gtest.h>

#include "ssd/ssd.hh"

namespace ssdrr::ssd {
namespace {

Config
agedConfig(double refresh_months)
{
    Config c = Config::small();
    c.basePeKilo = 0.5;
    c.baseRetentionMonths = 9.0;
    c.refreshThresholdMonths = refresh_months;
    return c;
}

HostRequest
readOf(std::uint64_t id, ftl::Lpn lpn)
{
    HostRequest r;
    r.id = id;
    r.lpn = lpn;
    r.pages = 1;
    r.isRead = true;
    return r;
}

TEST(Refresh, DisabledByDefault)
{
    Ssd ssd(agedConfig(0.0), core::Mechanism::Baseline);
    ssd.ftl().precondition();
    ssd.submit(readOf(1, 10));
    ssd.drain();
    EXPECT_EQ(ssd.stats().refreshes, 0u);
}

TEST(Refresh, ColdReadTriggersRewrite)
{
    Ssd ssd(agedConfig(6.0), core::Mechanism::Baseline);
    ssd.ftl().precondition();
    const ftl::Ppn before = ssd.ftl().translate(10);
    ssd.submit(readOf(1, 10));
    ssd.drain();
    EXPECT_EQ(ssd.stats().refreshes, 1u);
    const ftl::Ppn after = ssd.ftl().translate(10);
    EXPECT_FALSE(before == after) << "page physically relocated";
    EXPECT_LT(ssd.ftl().retentionMonths(after, ssd.eventQueue().now()),
              0.01)
        << "retention age restarted";
}

TEST(Refresh, SecondReadNeedsNoRetry)
{
    Ssd ssd(agedConfig(6.0), core::Mechanism::Baseline);
    ssd.ftl().precondition();

    ssd.submit(readOf(1, 10));
    ssd.drain();
    const double first_steps = ssd.stats().avgRetrySteps;
    EXPECT_GT(first_steps, 0.0) << "9-month-old page retries";

    ssd.submit(readOf(2, 10));
    ssd.drain();
    // Refresh removes the retention component but not the wear
    // component (a 0.5K-P/E page still needs ~2 steps at zero
    // retention, Fig. 5): the second read must need far fewer steps
    // than the first, and no second refresh fires.
    const double second_steps =
        2.0 * ssd.stats().avgRetrySteps - first_steps;
    EXPECT_LT(second_steps, first_steps / 2.0);
    EXPECT_GE(second_steps, 0.0);
    EXPECT_EQ(ssd.stats().refreshes, 1u)
        << "the refreshed page is young: no refresh storm";
}

TEST(Refresh, YoungPagesAreNotRefreshed)
{
    Config c = agedConfig(6.0);
    c.baseRetentionMonths = 1.0; // younger than the threshold
    Ssd ssd(c, core::Mechanism::Baseline);
    ssd.ftl().precondition();
    ssd.submit(readOf(1, 10));
    ssd.drain();
    EXPECT_EQ(ssd.stats().refreshes, 0u);
}

TEST(Refresh, CostsWritesAndBandwidth)
{
    // The paper's argument against refresh-only mitigation: every
    // refresh is a program that occupies dies and consumes lifetime.
    Config with = agedConfig(6.0);
    Config without = agedConfig(0.0);
    const int reads = 64;

    double rt_with = 0.0, rt_without = 0.0;
    std::uint64_t refreshes = 0;
    for (int pass = 0; pass < 2; ++pass) {
        Ssd ssd(pass == 0 ? with : without, core::Mechanism::Baseline);
        ssd.ftl().precondition();
        for (int i = 0; i < reads; ++i)
            ssd.submit(readOf(i + 1, static_cast<ftl::Lpn>(i) * 3));
        ssd.drain();
        if (pass == 0) {
            rt_with = ssd.stats().avgReadResponseUs;
            refreshes = ssd.stats().refreshes;
        } else {
            rt_without = ssd.stats().avgReadResponseUs;
        }
    }
    EXPECT_EQ(refreshes, static_cast<std::uint64_t>(reads))
        << "every distinct cold read triggers one refresh";
    // One-shot cold reads see no benefit (refresh happens after the
    // read) while the programs compete for the dies.
    EXPECT_GE(rt_with, rt_without * 0.95);
}

} // namespace
} // namespace ssdrr::ssd

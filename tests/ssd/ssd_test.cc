/**
 * @file
 * Integration tests for the full SSD: submission, replay, FTL
 * wiring, GC-through-the-datapath and statistics.
 */

#include <gtest/gtest.h>

#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr::ssd {
namespace {

Config
testConfig(double pe = 0.0, double ret = 0.0)
{
    Config c = Config::small();
    c.basePeKilo = pe;
    c.baseRetentionMonths = ret;
    return c;
}

TEST(Ssd, SingleReadOnFreshSsdMatchesPlainLatency)
{
    Ssd ssd(testConfig(), core::Mechanism::Baseline);
    ssd.ftl().precondition();

    HostRequest req;
    req.id = 1;
    req.arrival = 0;
    req.lpn = 0;
    req.pages = 1;
    req.isRead = true;
    ssd.submit(req);
    ssd.drain();

    const RunStats st = ssd.stats();
    EXPECT_EQ(st.reads, 1u);
    // Fresh page: no retry. LPN 0 lands on page 0 = LSB (tR 78) via
    // striped preconditioning: 78 + 16 + 20 = 114 us.
    EXPECT_NEAR(st.avgReadResponseUs, 114.0, 0.5);
    EXPECT_DOUBLE_EQ(st.avgRetrySteps, 0.0);
}

TEST(Ssd, SingleWriteCostsDmaPlusProgram)
{
    Ssd ssd(testConfig(), core::Mechanism::Baseline);
    ssd.ftl().precondition();

    HostRequest req;
    req.id = 1;
    req.lpn = 3;
    req.pages = 1;
    req.isRead = false;
    ssd.submit(req);
    ssd.drain();

    const RunStats st = ssd.stats();
    EXPECT_EQ(st.writes, 1u);
    // tDMA (16) + tPROG (700) = 716 us.
    EXPECT_NEAR(st.avgWriteResponseUs, 716.0, 1.0);
}

TEST(Ssd, MultiPageRequestCompletesWhenAllPagesDo)
{
    Ssd ssd(testConfig(), core::Mechanism::Baseline);
    ssd.ftl().precondition();

    HostRequest req;
    req.id = 1;
    req.lpn = 0;
    req.pages = 8;
    req.isRead = true;
    ssd.submit(req);
    ssd.drain();

    const RunStats st = ssd.stats();
    EXPECT_EQ(st.reads, 1u) << "one host request, not eight";
    // Eight pages stripe across eight distinct dies: they overlap,
    // so the response is far below 8x the single-page latency but at
    // least the slowest page (CSB: 117 + 16 + 20 = 153 us).
    EXPECT_GE(st.avgReadResponseUs, 150.0);
    EXPECT_LT(st.avgReadResponseUs, 2.0 * 153.0);
}

TEST(Ssd, AgedSsdTriggersRetries)
{
    Ssd ssd(testConfig(1.0, 6.0), core::Mechanism::Baseline);
    ssd.ftl().precondition();

    for (std::uint64_t i = 0; i < 32; ++i) {
        HostRequest req;
        req.id = i + 1;
        req.lpn = i * 7;
        req.pages = 1;
        req.isRead = true;
        ssd.submit(req);
    }
    ssd.drain();

    const RunStats st = ssd.stats();
    EXPECT_EQ(st.reads, 32u);
    // (1K, 6mo): ~12 retry steps on average.
    EXPECT_GT(st.avgRetrySteps, 8.0);
    EXPECT_LT(st.avgRetrySteps, 16.0);
    EXPECT_GT(st.avgReadResponseUs, 1000.0)
        << "retry steps multiply the read latency";
    EXPECT_EQ(st.readFailures, 0u);
}

TEST(Ssd, RewrittenPagesBecomeFreshAgain)
{
    Ssd ssd(testConfig(0.0, 12.0), core::Mechanism::Baseline);
    ssd.ftl().precondition();

    // First read the aged page (needs retries), then rewrite it and
    // read it again (no retries).
    HostRequest rd1{1, 0, 5, 1, true};
    ssd.submit(rd1);
    ssd.drain();
    const double aged_steps = ssd.stats().avgRetrySteps;
    EXPECT_GT(aged_steps, 0.0);

    HostRequest wr{2, 0, 5, 1, false};
    ssd.submit(wr);
    ssd.drain();

    HostRequest rd2{3, 0, 5, 1, true};
    ssd.submit(rd2);
    ssd.drain();
    // Average over {aged read with N steps, fresh read with 0}:
    // the mean must drop after the fresh read.
    EXPECT_LT(ssd.stats().avgRetrySteps, aged_steps);
}

TEST(Ssd, ReplaySmallTraceCompletesAllRequests)
{
    workload::SyntheticSpec spec = workload::findWorkload("hm_0");
    const workload::Trace trace = workload::generateSynthetic(
        spec, testConfig().logicalPages(), 300, 5);

    Ssd ssd(testConfig(1.0, 3.0), core::Mechanism::Baseline);
    const RunStats st = ssd.replay(trace);
    EXPECT_EQ(st.reads + st.writes, trace.size());
    EXPECT_GT(st.avgResponseUs, 0.0);
    EXPECT_GT(st.simulatedMs, 0.0);
    EXPECT_GE(st.p99ResponseUs, st.avgResponseUs);
    EXPECT_GE(st.maxResponseUs, st.p99ResponseUs);
}

TEST(Ssd, ReplayIsDeterministic)
{
    workload::SyntheticSpec spec = workload::findWorkload("YCSB-C");
    const workload::Trace trace = workload::generateSynthetic(
        spec, testConfig().logicalPages(), 200, 9);

    Ssd a(testConfig(1.0, 6.0), core::Mechanism::PnAR2);
    Ssd b(testConfig(1.0, 6.0), core::Mechanism::PnAR2);
    const RunStats sa = a.replay(trace);
    const RunStats sb = b.replay(trace);
    EXPECT_DOUBLE_EQ(sa.avgResponseUs, sb.avgResponseUs);
    EXPECT_DOUBLE_EQ(sa.p99ResponseUs, sb.p99ResponseUs);
    EXPECT_DOUBLE_EQ(sa.avgRetrySteps, sb.avgRetrySteps);
    EXPECT_EQ(sa.suspensions, sb.suspensions);
}

TEST(Ssd, SuspensionServesReadsDuringPrograms)
{
    // Sustained writes + reads on the same dies: with suspension on,
    // reads preempt programs and response time drops.
    workload::SyntheticSpec spec;
    spec.name = "mix";
    spec.readRatio = 0.5;
    spec.coldRatio = 0.5;
    spec.iops = 4000.0;
    const workload::Trace trace = workload::generateSynthetic(
        spec, testConfig().logicalPages(), 400, 11);

    Config with = testConfig(0.0, 3.0);
    Config without = testConfig(0.0, 3.0);
    without.suspension = false;

    Ssd on(with, core::Mechanism::Baseline);
    Ssd off(without, core::Mechanism::Baseline);
    const RunStats st_on = on.replay(trace);
    const RunStats st_off = off.replay(trace);

    EXPECT_GT(st_on.suspensions, 0u);
    EXPECT_EQ(st_off.suspensions, 0u);
    // Read latency benefits from preemption.
    EXPECT_LT(st_on.avgReadResponseUs, st_off.avgReadResponseUs);
}

TEST(Ssd, HeavyOverwriteRunsGcThroughDatapath)
{
    // Overwrite a small hot set many times: runtime blocks fill with
    // since-invalidated pages, free blocks dip below the threshold
    // and GC must reclaim through real erase transactions.
    Config c = testConfig(0.0, 6.0);
    c.blocksPerPlane = 12;
    c.userFraction = 0.50; // 6 of 12 blocks per plane preconditioned
    c.gcThreshold = 4;

    Ssd ssd(c, core::Mechanism::Baseline);
    ssd.ftl().precondition();

    const std::uint64_t hot_pages = 2048; // 64 per plane
    std::uint64_t id = 1;
    for (int round = 0; round < 24; ++round) {
        for (std::uint64_t lpn = 0; lpn < hot_pages; ++lpn) {
            HostRequest req;
            req.id = id++;
            req.arrival = ssd.eventQueue().now();
            req.lpn = lpn;
            req.pages = 1;
            req.isRead = false;
            ssd.submit(req);
        }
        ssd.drain();
    }

    const RunStats st = ssd.stats();
    EXPECT_EQ(st.writes, 24u * hot_pages);
    EXPECT_GT(st.gcCollections, 0u) << "overwrites must trigger GC";
    EXPECT_GT(ssd.ftl().blocks().totalErases(), 0u);
    // Greedy GC prefers fully-invalidated victims (zero moves) for
    // this pure-overwrite workload; relocation-path coverage lives
    // in ftl_test.cc's GcMovesPreserveLpnOwnership.
    // The FTL must keep every plane above its free-block threshold.
    for (std::uint32_t pl = 0; pl < c.layout().totalPlanes(); ++pl)
        EXPECT_GE(ssd.ftl().blocks().freeBlocks(pl), c.gcThreshold);
}

TEST(Ssd, RequestBeyondCapacityPanics)
{
    Ssd ssd(testConfig(), core::Mechanism::Baseline);
    ssd.ftl().precondition();
    HostRequest req;
    req.id = 1;
    req.lpn = ssd.ftl().logicalPages();
    req.pages = 1;
    req.isRead = true;
    EXPECT_THROW(ssd.submit(req), std::logic_error);
}

TEST(Ssd, EmptyRequestPanics)
{
    Ssd ssd(testConfig(), core::Mechanism::Baseline);
    ssd.ftl().precondition();
    HostRequest req;
    req.id = 1;
    req.pages = 0;
    EXPECT_THROW(ssd.submit(req), std::logic_error);
}

TEST(Ssd, RptIsBuiltAndExposed)
{
    Ssd ssd(testConfig(), core::Mechanism::PnAR2);
    EXPECT_EQ(ssd.rpt().entries(), 36u);
    EXPECT_EQ(ssd.mechanism(), core::Mechanism::PnAR2);
}

TEST(Ssd, UtilizationStatsAreCoherent)
{
    workload::SyntheticSpec spec = workload::findWorkload("usr_1");
    const workload::Trace trace = workload::generateSynthetic(
        spec, testConfig().logicalPages(), 300, 19);
    Ssd ssd(testConfig(1.0, 6.0), core::Mechanism::Baseline);
    const RunStats st = ssd.replay(trace);
    // Busy fractions are proper fractions, and the bus (16 us/page +
    // retry transfers) must be busier than idle but below saturation
    // at this load.
    EXPECT_GT(st.channelUtilization, 0.0);
    EXPECT_LT(st.channelUtilization, 1.0);
    EXPECT_GT(st.eccUtilization, 0.0);
    EXPECT_LT(st.eccUtilization, 1.0);
    // Each retry step moves one transfer (16 us) and one decode
    // (20 us): the ECC engine is proportionally busier.
    EXPECT_GT(st.eccUtilization, st.channelUtilization * 0.8);
}

TEST(Ssd, ResponseHistogramsArePopulated)
{
    workload::SyntheticSpec spec = workload::findWorkload("prn_1");
    const workload::Trace trace = workload::generateSynthetic(
        spec, testConfig().logicalPages(), 200, 21);
    Ssd ssd(testConfig(1.0, 3.0), core::Mechanism::PR2);
    ssd.replay(trace);
    EXPECT_EQ(ssd.responseTimes().count(), trace.size());
    EXPECT_GT(ssd.readResponseTimes().count(), 0u);
    EXPECT_LE(ssd.readResponseTimes().count(), trace.size());
}

} // namespace
} // namespace ssdrr::ssd

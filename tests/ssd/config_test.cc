/**
 * @file
 * Tests for the SSD configuration (paper Section 7.1 parameters).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "ssd/config.hh"

namespace ssdrr::ssd {
namespace {

TEST(Config, PaperGeometryIs512GiBClass)
{
    const Config c = Config::paper();
    EXPECT_EQ(c.channels, 4u);
    EXPECT_EQ(c.diesPerChannel, 4u);
    EXPECT_EQ(c.planesPerDie, 2u);
    EXPECT_EQ(c.blocksPerPlane, 1888u);
    EXPECT_EQ(c.pagesPerBlock, 576u);
    EXPECT_EQ(c.pageBytes, 16u * 1024);
    EXPECT_DOUBLE_EQ(c.eccCapability, 72.0);
    // Raw capacity ~531 GiB; exported capacity ~512 GiB equivalent.
    const double raw_gib =
        static_cast<double>(c.totalPages()) * c.pageBytes / (1ull << 30);
    EXPECT_NEAR(raw_gib, 531.0, 1.0);
    const double user_gib =
        static_cast<double>(c.logicalPages()) * c.pageBytes /
        (1ull << 30);
    EXPECT_NEAR(user_gib, 467.0, 2.0)
        << "88% of raw, in the 512-GB-drive class";
}

TEST(Config, LayoutMirrorsGeometry)
{
    const Config c = Config::paper();
    const ftl::AddressLayout l = c.layout();
    EXPECT_EQ(l.channels, c.channels);
    EXPECT_EQ(l.diesPerChannel, c.diesPerChannel);
    EXPECT_EQ(l.planesPerDie, c.planesPerDie);
    EXPECT_EQ(l.blocksPerPlane, c.blocksPerPlane);
    EXPECT_EQ(l.pagesPerBlock, c.pagesPerBlock);
    EXPECT_EQ(c.totalPages(), l.totalPages());
    EXPECT_EQ(c.totalDies(), 16u);
}

TEST(Config, ChipGeometryIsPerChannel)
{
    const Config c = Config::paper();
    const nand::Geometry g = c.chipGeometry();
    EXPECT_EQ(g.dies, c.diesPerChannel);
    EXPECT_EQ(g.planesPerDie, c.planesPerDie);
    EXPECT_EQ(g.blocksPerPlane, c.blocksPerPlane);
    EXPECT_EQ(g.pagesPerBlock, c.pagesPerBlock);
}

TEST(Config, SmallConfigKeepsParallelismShrinksBlocks)
{
    const Config s = Config::small();
    const Config p = Config::paper();
    EXPECT_EQ(s.channels, p.channels);
    EXPECT_EQ(s.diesPerChannel, p.diesPerChannel);
    EXPECT_EQ(s.planesPerDie, p.planesPerDie);
    EXPECT_LT(s.blocksPerPlane, p.blocksPerPlane);
    EXPECT_NO_THROW(s.validate());
}

TEST(Config, ValidateAcceptsPaperDefaults)
{
    EXPECT_NO_THROW(Config::paper().validate());
}

TEST(Config, ValidateRejectsDegenerateGeometry)
{
    Config c = Config::small();
    c.channels = 0;
    EXPECT_THROW(c.validate(), std::logic_error);
}

TEST(Config, ValidateRejectsNoGcHeadroom)
{
    Config c = Config::small();
    c.blocksPerPlane = static_cast<std::uint32_t>(c.gcThreshold) + 1;
    EXPECT_THROW(c.validate(), std::logic_error);
}

TEST(Config, ValidateRejectsFullUserFraction)
{
    Config c = Config::small();
    c.userFraction = 1.0;
    EXPECT_THROW(c.validate(), std::logic_error);
    c.userFraction = 0.0;
    EXPECT_THROW(c.validate(), std::logic_error);
}

TEST(Config, ValidateRejectsZeroEcc)
{
    Config c = Config::small();
    c.eccCapability = 0.0;
    EXPECT_THROW(c.validate(), std::logic_error);
}

TEST(Config, DefaultOperatingKnobs)
{
    const Config c;
    EXPECT_DOUBLE_EQ(c.basePeKilo, 0.0);
    EXPECT_DOUBLE_EQ(c.baseRetentionMonths, 0.0);
    EXPECT_DOUBLE_EQ(c.temperatureC, 30.0);
    EXPECT_TRUE(c.suspension);
}

} // namespace
} // namespace ssdrr::ssd

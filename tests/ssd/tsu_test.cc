/**
 * @file
 * Tests for the Transaction Scheduling Unit: per-die queues, read
 * priority over writes/erases, program/erase suspension on behalf of
 * waiting reads, and dispatch bookkeeping.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/retry_controller.hh"
#include "ssd/tsu.hh"

namespace ssdrr::ssd {
namespace {

class TsuTest : public ::testing::Test
{
  protected:
    TsuTest()
        : cfg_(Config::small()),
          model_(nand::Calibration{}, 7),
          rpt_(core::RptBuilder(model_).buildDefault()),
          rc_(core::Mechanism::Baseline, cfg_.timing, model_, &rpt_)
    {
        for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
            chips_.push_back(std::make_unique<nand::Chip>(
                eq_, cfg_.chipGeometry(), cfg_.timing, c));
            channels_.push_back(std::make_unique<Channel>(c));
            eccs_.push_back(std::make_unique<ecc::EccEngine>(
                cfg_.timing.tECC, cfg_.eccCapability));
        }
        std::vector<nand::Chip *> cp;
        std::vector<Channel *> hp;
        std::vector<ecc::EccEngine *> ep;
        for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
            cp.push_back(chips_[c].get());
            hp.push_back(channels_[c].get());
            ep.push_back(eccs_[c].get());
        }
        tsu_ = std::make_unique<Tsu>(eq_, cfg_, cp, hp, ep, rc_);
    }

    Txn
    makeTxn(TxnKind kind, std::uint32_t die_global, std::uint64_t id)
    {
        Txn t;
        t.kind = kind;
        t.id = id;
        t.dieGlobal = die_global;
        t.channel = die_global / cfg_.diesPerChannel;
        t.type = nand::PageType::LSB;
        if (isRead(kind)) {
            t.op = nand::OperatingPoint{0.0, 0.0, 30.0};
            t.profile = model_.pageProfile(t.channel, 0, id, t.op);
        }
        return t;
    }

    Config cfg_;
    sim::EventQueue eq_;
    nand::ErrorModel model_;
    core::Rpt rpt_;
    core::RetryController rc_;
    std::vector<std::unique_ptr<nand::Chip>> chips_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<std::unique_ptr<ecc::EccEngine>> eccs_;
    std::unique_ptr<Tsu> tsu_;
};

TEST_F(TsuTest, SingleReadDispatchesAndCompletes)
{
    std::vector<std::uint64_t> done;
    tsu_->onReadDone([&](const Txn &t, const core::ReadPlan &plan) {
        done.push_back(t.id);
        EXPECT_TRUE(plan.success);
    });
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 0, 1));
    eq_.run();
    EXPECT_EQ(done, (std::vector<std::uint64_t>{1}));
    EXPECT_EQ(tsu_->dispatchedReads(), 1u);
    EXPECT_EQ(tsu_->backlog(), 0u);
}

TEST_F(TsuTest, ReadsOnSameDieSerialize)
{
    std::vector<sim::Tick> completions;
    tsu_->onReadDone([&](const Txn &, const core::ReadPlan &) {
        completions.push_back(eq_.now());
    });
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 0, 1));
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 0, 2));
    EXPECT_EQ(tsu_->backlog(), 1u) << "second read queued behind busy die";
    eq_.run();
    ASSERT_EQ(completions.size(), 2u);
    // Fresh LSB reads: ~114 us each; the second starts only after
    // the first frees the die (at its dma end = 94 us).
    EXPECT_GT(completions[1], completions[0]);
    EXPECT_GE(completions[1] - completions[0], sim::usec(90));
}

TEST_F(TsuTest, ReadsOnDifferentDiesOverlap)
{
    std::vector<sim::Tick> completions;
    tsu_->onReadDone([&](const Txn &, const core::ReadPlan &) {
        completions.push_back(eq_.now());
    });
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 0, 1));
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 5, 2));
    eq_.run();
    ASSERT_EQ(completions.size(), 2u);
    // Different dies on different channels: fully parallel.
    EXPECT_EQ(completions[0], completions[1]);
}

TEST_F(TsuTest, ReadJumpsAheadOfQueuedWrite)
{
    std::vector<std::string> order;
    tsu_->onReadDone([&](const Txn &, const core::ReadPlan &) {
        order.push_back("read");
    });
    tsu_->onWriteDone([&](const Txn &) { order.push_back("write"); });

    // Get a program in flight on die 0, then queue another write and
    // a read: the read must suspend the program and go first, and the
    // second write must still wait behind it.
    tsu_->enqueue(makeTxn(TxnKind::HostWrite, 0, 1));
    eq_.run(sim::usec(50)); // past the data-in DMA, program running
    tsu_->enqueue(makeTxn(TxnKind::HostWrite, 0, 2));
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 0, 3));
    eq_.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "read")
        << "suspension preempts the in-flight program for the read";
    EXPECT_EQ(order[1], "write");
    EXPECT_EQ(order[2], "write");
}

TEST_F(TsuTest, SuspensionPreemptsInFlightProgram)
{
    sim::Tick read_done = 0, write_done = 0;
    tsu_->onReadDone(
        [&](const Txn &, const core::ReadPlan &) { read_done = eq_.now(); });
    tsu_->onWriteDone([&](const Txn &) { write_done = eq_.now(); });

    tsu_->enqueue(makeTxn(TxnKind::HostWrite, 0, 1));
    // Let the program get going, then a read arrives.
    eq_.run(sim::usec(100));
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 0, 2));
    eq_.run();

    EXPECT_GT(read_done, 0u);
    EXPECT_GT(write_done, read_done)
        << "suspended program resumes after the read";
    // The write pays its remaining time plus the suspend overhead.
    EXPECT_GE(write_done,
              sim::usec(16) + cfg_.timing.tPROG + cfg_.timing.tSUS);
    EXPECT_EQ(chips_[0]->suspendCount(), 1u);
}

TEST_F(TsuTest, NoSuspensionWhenDisabled)
{
    cfg_.suspension = false;
    // Rebuild the TSU with suspension off.
    std::vector<nand::Chip *> cp;
    std::vector<Channel *> hp;
    std::vector<ecc::EccEngine *> ep;
    for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        cp.push_back(chips_[c].get());
        hp.push_back(channels_[c].get());
        ep.push_back(eccs_[c].get());
    }
    Tsu tsu(eq_, cfg_, cp, hp, ep, rc_);
    sim::Tick read_done = 0;
    tsu.onReadDone(
        [&](const Txn &, const core::ReadPlan &) { read_done = eq_.now(); });
    tsu.onWriteDone([](const Txn &) {});

    tsu.enqueue(makeTxn(TxnKind::HostWrite, 0, 1));
    eq_.run(sim::usec(100));
    tsu.enqueue(makeTxn(TxnKind::HostRead, 0, 2));
    eq_.run();
    EXPECT_EQ(chips_[0]->suspendCount(), 0u);
    // The read waited for the full program (16 + 700 us) first.
    EXPECT_GE(read_done, sim::usec(716));
}

TEST_F(TsuTest, EraseRunsAfterReadsAndWrites)
{
    std::vector<std::string> order;
    tsu_->onReadDone([&](const Txn &, const core::ReadPlan &) {
        order.push_back("read");
    });
    tsu_->onWriteDone([&](const Txn &) { order.push_back("write"); });
    tsu_->onEraseDone([&](const Txn &) { order.push_back("erase"); });

    // All queued while the die is free: first enqueue wins the die,
    // then priority decides among the waiters.
    tsu_->enqueue(makeTxn(TxnKind::Erase, 0, 1));
    tsu_->enqueue(makeTxn(TxnKind::HostWrite, 0, 2));
    tsu_->enqueue(makeTxn(TxnKind::HostRead, 0, 3));
    eq_.run();
    ASSERT_EQ(order.size(), 3u);
    // The erase started first (die was idle), the read preempted it
    // via suspension, then the write went before the erase resumed.
    EXPECT_EQ(order[0], "read");
    EXPECT_EQ(order[1], "write");
    EXPECT_EQ(order[2], "erase");
}

TEST_F(TsuTest, ManyTransactionsAllComplete)
{
    int reads = 0, writes = 0, erases = 0;
    tsu_->onReadDone(
        [&](const Txn &, const core::ReadPlan &) { ++reads; });
    tsu_->onWriteDone([&](const Txn &) { ++writes; });
    tsu_->onEraseDone([&](const Txn &) { ++erases; });

    std::uint64_t id = 1;
    for (int i = 0; i < 64; ++i) {
        const auto die = static_cast<std::uint32_t>(i % cfg_.totalDies());
        tsu_->enqueue(makeTxn(TxnKind::HostRead, die, id++));
        if (i % 4 == 0)
            tsu_->enqueue(makeTxn(TxnKind::HostWrite, die, id++));
        if (i % 16 == 0)
            tsu_->enqueue(makeTxn(TxnKind::Erase, die, id++));
    }
    eq_.run();
    EXPECT_EQ(reads, 64);
    EXPECT_EQ(writes, 16);
    EXPECT_EQ(erases, 4);
    EXPECT_EQ(tsu_->backlog(), 0u);
    EXPECT_EQ(tsu_->dispatchedReads(), 64u);
    EXPECT_EQ(tsu_->dispatchedWrites(), 16u);
    EXPECT_EQ(tsu_->dispatchedErases(), 4u);
}

TEST_F(TsuTest, OutOfRangeDiePanics)
{
    EXPECT_THROW(tsu_->enqueue(makeTxn(TxnKind::HostRead, 999, 1)),
                 std::logic_error);
}

} // namespace
} // namespace ssdrr::ssd

/**
 * @file
 * Tests for the in-datapath ECC engine and capability model.
 */

#include <gtest/gtest.h>

#include "ecc/engine.hh"

namespace ssdrr::ecc {
namespace {

TEST(CapabilityModel, ThresholdSemantics)
{
    const CapabilityModel cap(72.0);
    EXPECT_DOUBLE_EQ(cap.capability(), 72.0);
    EXPECT_TRUE(cap.correctable(0.0));
    EXPECT_TRUE(cap.correctable(72.0)) << "boundary is correctable";
    EXPECT_FALSE(cap.correctable(72.1));
}

TEST(CapabilityModel, MarginIsSignedDistance)
{
    const CapabilityModel cap(72.0);
    EXPECT_DOUBLE_EQ(cap.margin(40.0), 32.0);
    EXPECT_DOUBLE_EQ(cap.margin(72.0), 0.0);
    EXPECT_DOUBLE_EQ(cap.margin(100.0), -28.0);
}

TEST(EccEngine, FirstDecodeStartsImmediately)
{
    EccEngine e(sim::usec(20), 72.0);
    EXPECT_EQ(e.acquire(sim::usec(5)), sim::usec(5));
    EXPECT_EQ(e.busyUntil(), sim::usec(25));
    EXPECT_EQ(e.decodes(), 1u);
}

TEST(EccEngine, BackToBackDecodesSerialize)
{
    EccEngine e(sim::usec(20), 72.0);
    EXPECT_EQ(e.acquire(0), 0u);
    EXPECT_EQ(e.acquire(0), sim::usec(20))
        << "second decode waits for the first";
    EXPECT_EQ(e.acquire(sim::usec(100)), sim::usec(100));
    EXPECT_EQ(e.totalBusy(), sim::usec(60));
}

TEST(EccEngine, GapsBetweenDecodesAreUsable)
{
    // A retry plan reserves decodes ~126 us apart; an independent
    // read must slot its decode into the gap instead of queueing at
    // the horizon.
    EccEngine e(sim::usec(20), 72.0);
    e.acquire(0);               // [0, 20)
    e.acquire(sim::usec(126));  // [126, 146)
    EXPECT_EQ(e.acquire(sim::usec(30)), sim::usec(30))
        << "gap [20, 126) fits a 20-us decode";
}

TEST(EccEngine, ReleaseKeepsFutureReservations)
{
    EccEngine e(sim::usec(20), 72.0);
    e.acquire(0);
    e.acquire(sim::usec(200));
    e.releaseBefore(sim::usec(100));
    EXPECT_EQ(e.acquire(sim::usec(200)), sim::usec(220))
        << "future window still blocks";
}

TEST(EccEngine, CapabilityIsExposed)
{
    EccEngine e(sim::usec(20), 60.0);
    EXPECT_TRUE(e.model().correctable(60.0));
    EXPECT_FALSE(e.model().correctable(61.0));
    EXPECT_EQ(e.tEcc(), sim::usec(20));
}

} // namespace
} // namespace ssdrr::ecc

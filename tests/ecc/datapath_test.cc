/**
 * @file
 * End-to-end ECC datapath: the simulator's CapabilityModel treats
 * "decode succeeds iff errors <= t" as an axiom; this test closes
 * the loop by injecting the error model's per-step error counts into
 * real BCH codewords and checking the real decoder agrees with the
 * capability model on every step of a retry walk.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ecc/bch.hh"
#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "sim/rng.hh"

namespace ssdrr::ecc {
namespace {

class Datapath : public ::testing::Test
{
  protected:
    // Scaled-down code with the same rate regime as the paper's
    // t=72/8192: t=12 over 1024 data bits keeps the test fast while
    // the capability threshold stays exact.
    Datapath() : code_(12, 12, 1024), cap_(12.0) {}

    /** Encode random data, flip @p errors bits, decode. */
    bool
    decodesWith(int errors, sim::Rng &rng) const
    {
        std::vector<std::uint8_t> data(1024);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.uniformInt(2));
        auto cw = code_.encode(data);
        std::set<int> pos;
        while (static_cast<int>(pos.size()) < errors)
            pos.insert(static_cast<int>(rng.uniformInt(cw.size())));
        for (int p : pos)
            cw[p] ^= 1;
        const auto res = code_.decode(cw);
        if (res.ok) {
            // Corrected data must equal the original.
            for (int i = 0; i < 1024; ++i)
                EXPECT_EQ(cw[code_.parityBits() + i], data[i]);
        }
        return res.ok;
    }

    BchCode code_;
    CapabilityModel cap_;
};

TEST_F(Datapath, RealDecoderMatchesCapabilityModelAtEveryCount)
{
    sim::Rng rng(11);
    for (int errors = 0; errors <= 16; ++errors) {
        const bool predicted = cap_.correctable(errors);
        const bool actual = decodesWith(errors, rng);
        if (errors <= 12) {
            EXPECT_TRUE(predicted);
            EXPECT_TRUE(actual) << errors << " errors";
        } else {
            EXPECT_FALSE(predicted);
            EXPECT_FALSE(actual) << errors << " errors";
        }
    }
}

TEST_F(Datapath, RetryWalkVerdictsMatchRealDecoder)
{
    // Take a model-generated retry walk and re-enact it on real
    // codewords: the per-step pass/fail verdicts of the capability
    // model (what the SSD simulator uses) and of the real decoder
    // (what hardware would do) must be identical.
    nand::Calibration cal;
    cal.eccCapability = 12.0;    // match the scaled-down code
    cal.designCapability = 12.0; // retry table designed for it
    // Scale error surfaces down with the capability so walks make
    // sense at t=12 (errors per 1024-bit codeword).
    cal.mBase = 1.0;
    cal.mPe = 1.0;
    cal.mRet = 1.7;
    cal.mTemp = 1.0;
    const nand::ErrorModel model(cal);
    // Mild condition: walks of a handful of steps (mean ~4).
    const nand::OperatingPoint op{0.25, 1.5, 85.0};

    sim::Rng rng(13);
    int walks = 0;
    for (int p = 0; p < 40 && walks < 8; ++p) {
        const nand::PageErrorProfile prof =
            model.pageProfile(0, 0, p, op);
        if (prof.retrySteps < 1 || prof.retrySteps > 6)
            continue; // keep the test fast
        ++walks;
        for (int k = 0; k <= prof.retrySteps; ++k) {
            const double e = model.stepErrors(prof, k);
            const int errors = std::min(
                static_cast<int>(std::lround(e)), code_.codewordBits());
            const bool predicted = cap_.correctable(e);
            const bool actual = decodesWith(errors, rng);
            EXPECT_EQ(predicted, actual)
                << "page " << p << " step " << k << " errors " << e;
        }
    }
    EXPECT_GE(walks, 3) << "enough walks exercised";
}

TEST_F(Datapath, EngineLatencyIsIndependentOfErrorCount)
{
    // The hardware engine model charges a flat tECC per codeword
    // regardless of the error count (pipelined decoders); verify the
    // model's reservation behaviour reflects that.
    EccEngine engine(sim::usec(20), 12.0);
    const sim::Tick t0 = engine.acquire(0);
    const sim::Tick t1 = engine.acquire(0);
    EXPECT_EQ(t1 - t0, sim::usec(20));
}

} // namespace
} // namespace ssdrr::ecc

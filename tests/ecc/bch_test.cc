/**
 * @file
 * Tests for the BCH encoder/decoder: round trips at every error
 * count up to t, detection beyond t, and the paper's t=72 design
 * point (Section 2.4: 72 correctable bits per 1-KiB codeword).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "ecc/bch.hh"
#include "sim/rng.hh"

namespace ssdrr::ecc {
namespace {

std::vector<std::uint8_t>
randomData(int bits, sim::Rng &rng)
{
    std::vector<std::uint8_t> d(bits);
    for (auto &b : d)
        b = static_cast<std::uint8_t>(rng.uniformInt(2));
    return d;
}

/** Flip @p k distinct random bits of @p cw. */
std::set<int>
inject(std::vector<std::uint8_t> &cw, int k, sim::Rng &rng)
{
    std::set<int> pos;
    while (static_cast<int>(pos.size()) < k)
        pos.insert(static_cast<int>(rng.uniformInt(cw.size())));
    for (int p : pos)
        cw[p] ^= 1;
    return pos;
}

TEST(Bch, ParametersOfSmallCode)
{
    // Classic BCH(15, 7, t=2) over GF(2^4): 8 parity bits.
    const BchCode code(4, 2, 7);
    EXPECT_EQ(code.t(), 2);
    EXPECT_EQ(code.dataBits(), 7);
    EXPECT_EQ(code.parityBits(), 8);
    EXPECT_EQ(code.codewordBits(), 15);
}

TEST(Bch, GeneratorOfBch15_7_2IsKnownPolynomial)
{
    // g(x) = x^8 + x^7 + x^6 + x^4 + 1 for the (15, 7) 2-error code.
    const BchCode code(4, 2, 7);
    const std::vector<std::uint8_t> expected = {1, 0, 0, 0, 1, 0, 1, 1, 1};
    EXPECT_EQ(code.generator(), expected);
}

TEST(Bch, EncodeIsSystematic)
{
    sim::Rng rng(1);
    const BchCode code(6, 3, 30);
    const auto data = randomData(30, rng);
    const auto cw = code.encode(data);
    ASSERT_EQ(static_cast<int>(cw.size()), code.codewordBits());
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(cw[code.parityBits() + i], data[i])
            << "data must appear verbatim in the codeword";
}

TEST(Bch, CleanCodewordDecodesWithZeroCorrections)
{
    sim::Rng rng(2);
    const BchCode code(6, 3, 30);
    auto cw = code.encode(randomData(30, rng));
    const auto res = code.decode(cw);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.correctedErrors, 0);
}

TEST(Bch, CorrectsExactlyInjectedBits)
{
    sim::Rng rng(3);
    const BchCode code(8, 5, 100);
    const auto data = randomData(100, rng);
    const auto clean = code.encode(data);
    for (int k = 1; k <= 5; ++k) {
        auto cw = clean;
        inject(cw, k, rng);
        const auto res = code.decode(cw);
        EXPECT_TRUE(res.ok) << k << " errors";
        EXPECT_EQ(res.correctedErrors, k);
        EXPECT_EQ(cw, clean) << "decoded codeword must match original";
    }
}

TEST(Bch, ErrorsInParityAreAlsoCorrected)
{
    sim::Rng rng(4);
    const BchCode code(8, 4, 64);
    const auto clean = code.encode(randomData(64, rng));
    auto cw = clean;
    // Flip bits 0 and 1, which live in the parity section.
    cw[0] ^= 1;
    cw[1] ^= 1;
    const auto res = code.decode(cw);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.correctedErrors, 2);
    EXPECT_EQ(cw, clean);
}

TEST(Bch, DetectsMoreThanTErrors)
{
    sim::Rng rng(5);
    const BchCode code(8, 4, 64);
    int detected = 0;
    const int trials = 40;
    for (int i = 0; i < trials; ++i) {
        auto cw = code.encode(randomData(64, rng));
        const auto orig = cw;
        inject(cw, 9, rng); // > 2t would surely fail; 2t+1 = 9
        const auto res = code.decode(cw);
        if (!res.ok)
            ++detected;
        else
            EXPECT_NE(cw, orig) << "ok=true with wrong correction";
    }
    // Miscorrection is possible in principle but must be rare.
    EXPECT_GE(detected, trials * 3 / 4);
}

TEST(Bch, ShorteningKeepsParityCount)
{
    // Shortened code: same generator, fewer data bits.
    const BchCode full(8, 4, 200);
    const BchCode shortened(8, 4, 64);
    EXPECT_EQ(full.parityBits(), shortened.parityBits());
    EXPECT_LT(shortened.codewordBits(), full.codewordBits());
}

TEST(Bch, RejectsOversizedCode)
{
    // 2^4 - 1 = 15 total bits; t=2 needs 8 parity -> max 7 data bits.
    EXPECT_THROW(BchCode(4, 2, 8), std::logic_error);
    EXPECT_NO_THROW(BchCode(4, 2, 7));
}

TEST(Bch, EncodeRejectsWrongLength)
{
    const BchCode code(6, 2, 20);
    EXPECT_THROW(code.encode(std::vector<std::uint8_t>(19)),
                 std::logic_error);
    std::vector<std::uint8_t> bad(code.codewordBits() + 1, 0);
    EXPECT_THROW(code.decode(bad), std::logic_error);
}

TEST(Bch, PaperDesignPointInstantiates)
{
    // Section 2.4 / 7.1: 72 correctable bits per 1-KiB (8192-bit)
    // codeword requires GF(2^14); parity = at most 72 * 14 bits.
    const BchCode code(14, 72, 8192);
    EXPECT_EQ(code.t(), 72);
    EXPECT_EQ(code.dataBits(), 8192);
    EXPECT_LE(code.parityBits(), 72 * 14);
    EXPECT_GT(code.parityBits(), 0);
    // Code rate sanity: parity overhead roughly 12%, i.e., the spare
    // area of a 16-KiB page with ~2 KiB spare can host it.
    const double overhead =
        static_cast<double>(code.parityBits()) / code.dataBits();
    EXPECT_LT(overhead, 0.13);
}

TEST(Bch, PaperCodeCorrectsSeventyTwoErrors)
{
    sim::Rng rng(6);
    const BchCode code(14, 72, 8192);
    const auto data = randomData(8192, rng);
    const auto clean = code.encode(data);

    auto cw = clean;
    inject(cw, 72, rng);
    const auto res = code.decode(cw);
    EXPECT_TRUE(res.ok) << "t errors must be correctable";
    EXPECT_EQ(res.correctedErrors, 72);
    EXPECT_EQ(cw, clean);
}

TEST(Bch, PaperCodeFlagsSeventyThreeErrors)
{
    sim::Rng rng(7);
    const BchCode code(14, 72, 8192);
    auto cw = code.encode(randomData(8192, rng));
    inject(cw, 73, rng);
    const auto res = code.decode(cw);
    EXPECT_FALSE(res.ok)
        << "t+1 errors must trigger the read-retry condition";
}

/**
 * Round-trip sweep over (m, t, data_bits) x error count: decode must
 * restore the exact codeword for every k <= t.
 */
class BchRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(BchRoundTrip, AllCorrectableErrorCounts)
{
    const auto [m, t, data_bits] = GetParam();
    sim::Rng rng(static_cast<std::uint64_t>(m * 1000 + t * 10));
    const BchCode code(m, t, data_bits);
    const auto clean = code.encode(randomData(data_bits, rng));
    for (int k = 0; k <= t; ++k) {
        auto cw = clean;
        inject(cw, k, rng);
        const auto res = code.decode(cw);
        ASSERT_TRUE(res.ok) << "k=" << k;
        ASSERT_EQ(res.correctedErrors, k);
        ASSERT_EQ(cw, clean) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchRoundTrip,
    ::testing::Values(std::make_tuple(4, 2, 7), std::make_tuple(5, 3, 15),
                      std::make_tuple(6, 4, 30), std::make_tuple(8, 8, 128),
                      std::make_tuple(10, 16, 512),
                      std::make_tuple(12, 24, 1024),
                      std::make_tuple(13, 40, 4096)));

} // namespace
} // namespace ssdrr::ecc

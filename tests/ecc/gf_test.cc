/**
 * @file
 * Tests for GF(2^m) arithmetic: field axioms, log/antilog
 * consistency, and inverse correctness across supported field sizes.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "ecc/gf.hh"

namespace ssdrr::ecc {
namespace {

TEST(GaloisField, SizesMatchDegree)
{
    for (int m = 3; m <= 14; ++m) {
        const GaloisField gf(m);
        EXPECT_EQ(gf.m(), m);
        EXPECT_EQ(gf.n(), (1u << m) - 1);
        EXPECT_EQ(gf.size(), 1u << m);
    }
}

TEST(GaloisField, AdditionIsXor)
{
    EXPECT_EQ(GaloisField::add(0b1010, 0b0110), 0b1100u);
    EXPECT_EQ(GaloisField::add(7, 7), 0u) << "characteristic 2";
}

TEST(GaloisField, MultiplicationByZeroAndOne)
{
    const GaloisField gf(8);
    for (std::uint32_t a : {0u, 1u, 2u, 37u, 255u}) {
        EXPECT_EQ(gf.mul(a, 0), 0u);
        EXPECT_EQ(gf.mul(0, a), 0u);
        EXPECT_EQ(gf.mul(a, 1), a);
        EXPECT_EQ(gf.mul(1, a), a);
    }
}

TEST(GaloisField, MultiplicationCommutes)
{
    const GaloisField gf(8);
    for (std::uint32_t a = 1; a < 256; a += 13)
        for (std::uint32_t b = 1; b < 256; b += 17)
            EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
}

TEST(GaloisField, MultiplicationAssociates)
{
    const GaloisField gf(6);
    for (std::uint32_t a = 1; a < 64; a += 5)
        for (std::uint32_t b = 1; b < 64; b += 7)
            for (std::uint32_t c = 1; c < 64; c += 11)
                EXPECT_EQ(gf.mul(gf.mul(a, b), c),
                          gf.mul(a, gf.mul(b, c)));
}

TEST(GaloisField, DistributesOverAddition)
{
    const GaloisField gf(6);
    for (std::uint32_t a = 1; a < 64; a += 3)
        for (std::uint32_t b = 0; b < 64; b += 5)
            for (std::uint32_t c = 0; c < 64; c += 7)
                EXPECT_EQ(gf.mul(a, GaloisField::add(b, c)),
                          GaloisField::add(gf.mul(a, b), gf.mul(a, c)));
}

TEST(GaloisField, InverseRoundTrips)
{
    const GaloisField gf(10);
    for (std::uint32_t a = 1; a < gf.size(); a += 37) {
        const std::uint32_t inv = gf.inv(a);
        EXPECT_EQ(gf.mul(a, inv), 1u) << "a=" << a;
    }
}

TEST(GaloisField, DivisionIsMulByInverse)
{
    const GaloisField gf(8);
    for (std::uint32_t a = 1; a < 256; a += 29)
        for (std::uint32_t b = 1; b < 256; b += 31) {
            EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
            EXPECT_EQ(gf.div(a, b), gf.mul(a, gf.inv(b)));
        }
}

TEST(GaloisField, LogExpRoundTrip)
{
    const GaloisField gf(9);
    for (std::uint32_t a = 1; a < gf.size(); a += 11)
        EXPECT_EQ(gf.alphaPow(gf.log(a)), a);
}

TEST(GaloisField, AlphaGeneratesWholeGroup)
{
    const GaloisField gf(7);
    std::set<std::uint32_t> seen;
    for (std::uint32_t i = 0; i < gf.n(); ++i)
        seen.insert(gf.alphaPow(i));
    EXPECT_EQ(seen.size(), gf.n())
        << "alpha must be primitive: its powers cover all nonzero "
           "elements";
}

TEST(GaloisField, AlphaPowHandlesNegativeAndLargeExponents)
{
    const GaloisField gf(8);
    const auto n = static_cast<std::int64_t>(gf.n());
    EXPECT_EQ(gf.alphaPow(-1), gf.alphaPow(n - 1));
    EXPECT_EQ(gf.alphaPow(n), gf.alphaPow(0));
    EXPECT_EQ(gf.alphaPow(3 * n + 5), gf.alphaPow(5));
    EXPECT_EQ(gf.alphaPow(0), 1u);
}

TEST(GaloisField, PowMatchesRepeatedMul)
{
    const GaloisField gf(8);
    for (std::uint32_t a : {2u, 3u, 87u, 200u}) {
        std::uint32_t acc = 1;
        for (std::uint64_t e = 0; e < 20; ++e) {
            EXPECT_EQ(gf.pow(a, e), acc) << "a=" << a << " e=" << e;
            acc = gf.mul(acc, a);
        }
    }
    EXPECT_EQ(gf.pow(0, 0), 1u) << "0^0 convention";
    EXPECT_EQ(gf.pow(0, 5), 0u);
}

TEST(GaloisField, FermatLittleTheorem)
{
    // a^(2^m - 1) = 1 for every nonzero a.
    const GaloisField gf(8);
    for (std::uint32_t a = 1; a < gf.size(); a += 7)
        EXPECT_EQ(gf.pow(a, gf.n()), 1u);
}

TEST(GaloisField, PrimitivePolyHasDegreeM)
{
    for (int m = 3; m <= 14; ++m) {
        const GaloisField gf(m);
        const std::uint32_t p = gf.primitivePoly();
        EXPECT_EQ(p >> m, 1u) << "degree bit set for m=" << m;
        EXPECT_EQ(p >> (m + 1), 0u) << "no higher bits for m=" << m;
        EXPECT_EQ(p & 1, 1u) << "constant term for irreducibility";
    }
}

TEST(GaloisField, UnsupportedDegreePanics)
{
    EXPECT_THROW(GaloisField(2), std::logic_error);
    EXPECT_THROW(GaloisField(15), std::logic_error);
}

TEST(GaloisField, ZeroInverseAndLogPanic)
{
    const GaloisField gf(8);
    EXPECT_THROW(gf.inv(0), std::logic_error);
    EXPECT_THROW(gf.log(0), std::logic_error);
    EXPECT_THROW(gf.div(5, 0), std::logic_error);
}

/** Field axioms hold across every supported degree (TEST_P sweep). */
class GfDegreeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(GfDegreeSweep, SampledAxioms)
{
    const GaloisField gf(GetParam());
    const std::uint32_t step = gf.n() / 17 + 1;
    for (std::uint32_t a = 1; a < gf.size(); a += step) {
        EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
        EXPECT_EQ(gf.alphaPow(gf.log(a)), a);
        for (std::uint32_t b = 1; b < gf.size(); b += step) {
            // log(ab) = log a + log b (mod n)
            const std::uint32_t prod = gf.mul(a, b);
            EXPECT_EQ(gf.log(prod),
                      (gf.log(a) + gf.log(b)) % gf.n());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, GfDegreeSweep,
                         ::testing::Values(3, 4, 5, 6, 8, 10, 12, 13, 14));

} // namespace
} // namespace ssdrr::ecc

/**
 * @file
 * Unit tests for the deterministic fault-injection timeline.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.hh"

namespace ssdrr::sim {
namespace {

FaultEvent
failStop(std::uint32_t drive, Tick at)
{
    FaultEvent e;
    e.kind = FaultEvent::Kind::FailStop;
    e.drive = drive;
    e.at = at;
    return e;
}

FaultEvent
failSlow(std::uint32_t drive, Tick at, Tick until, double mult)
{
    FaultEvent e;
    e.kind = FaultEvent::Kind::FailSlow;
    e.drive = drive;
    e.at = at;
    e.until = until;
    e.multiplier = mult;
    return e;
}

FaultEvent
uecc(std::uint32_t drive, Tick at, Tick until, double prob)
{
    FaultEvent e;
    e.kind = FaultEvent::Kind::Uecc;
    e.drive = drive;
    e.at = at;
    e.until = until;
    e.probability = prob;
    return e;
}

TEST(FaultInjector, EmptyTimelineInjectsNothing)
{
    FaultInjector fi({}, 42, 4);
    EXPECT_TRUE(fi.empty());
    EXPECT_FALSE(fi.anyFailStop());
    for (std::uint32_t d = 0; d < 4; ++d) {
        EXPECT_EQ(fi.failStopTick(d), kTickNever);
        EXPECT_FALSE(fi.failStopped(d, 1u << 30));
        EXPECT_DOUBLE_EQ(fi.slowdownAt(d, 12345), 1.0);
        EXPECT_FALSE(fi.ueccAt(d, 12345, 7));
    }
}

TEST(FaultInjector, FailStopIsPermanentFromItsTick)
{
    FaultInjector fi({failStop(2, usec(100))}, 42, 4);
    EXPECT_TRUE(fi.anyFailStop());
    EXPECT_EQ(fi.failStopTick(2), usec(100));
    EXPECT_FALSE(fi.failStopped(2, usec(100) - 1));
    EXPECT_TRUE(fi.failStopped(2, usec(100)));
    EXPECT_TRUE(fi.failStopped(2, usec(100000)));
    // Other drives stay healthy forever.
    EXPECT_EQ(fi.failStopTick(0), kTickNever);
    EXPECT_FALSE(fi.failStopped(0, usec(100000)));
}

TEST(FaultInjector, EarliestFailStopWinsPerDrive)
{
    FaultInjector fi({failStop(1, usec(500)), failStop(1, usec(200))},
                     42, 2);
    EXPECT_EQ(fi.failStopTick(1), usec(200));
}

TEST(FaultInjector, FailSlowStretchesOnlyInsideItsWindow)
{
    FaultInjector fi({failSlow(0, usec(100), usec(200), 4.0)}, 42, 2);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(100) - 1), 1.0);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(100)), 4.0);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(200) - 1), 4.0);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(200)), 1.0); // end excl.
    EXPECT_DOUBLE_EQ(fi.slowdownAt(1, usec(150)), 1.0); // other drive
}

TEST(FaultInjector, OverlappingFailSlowWindowsCompound)
{
    FaultInjector fi({failSlow(0, usec(100), usec(300), 2.0),
                      failSlow(0, usec(200), usec(400), 3.0)},
                     42, 1);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(150)), 2.0);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(250)), 6.0);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(350)), 3.0);
}

TEST(FaultInjector, OpenEndedWindowNeverCloses)
{
    FaultInjector fi({failSlow(0, usec(100), kTickNever, 2.0)}, 42, 1);
    EXPECT_DOUBLE_EQ(fi.slowdownAt(0, usec(1) << 20), 2.0);
}

TEST(FaultInjector, UeccDrawsAreDeterministic)
{
    FaultInjector a({uecc(1, 0, kTickNever, 0.3)}, 42, 2);
    FaultInjector b({uecc(1, 0, kTickNever, 0.3)}, 42, 2);
    for (std::uint64_t token = 1; token < 200; ++token)
        EXPECT_EQ(a.ueccAt(1, usec(10), token),
                  b.ueccAt(1, usec(10), token))
            << "token " << token;
}

TEST(FaultInjector, UeccDrawsAreTokenNotTimeDependent)
{
    // The draw hashes (seed, drive, event, token) only, so a retry
    // with a fresh token redraws while replay at another wall tick
    // inside the window does not.
    FaultInjector fi({uecc(0, 0, kTickNever, 0.5)}, 42, 1);
    for (std::uint64_t token = 1; token < 50; ++token)
        EXPECT_EQ(fi.ueccAt(0, usec(1), token),
                  fi.ueccAt(0, usec(999), token));
}

TEST(FaultInjector, UeccFrequencyTracksProbability)
{
    FaultInjector fi({uecc(0, 0, kTickNever, 0.25)}, 7, 1);
    int hits = 0;
    const int draws = 4000;
    for (int token = 1; token <= draws; ++token)
        hits += fi.ueccAt(0, usec(5), token) ? 1 : 0;
    // 4000 draws at p = 0.25: a binomial 5-sigma band is ~±137.
    EXPECT_GT(hits, 1000 - 150);
    EXPECT_LT(hits, 1000 + 150);
}

TEST(FaultInjector, UeccRespectsWindowAndDrive)
{
    FaultInjector fi({uecc(1, usec(100), usec(200), 1.0)}, 42, 3);
    EXPECT_FALSE(fi.ueccAt(1, usec(99), 7));
    EXPECT_TRUE(fi.ueccAt(1, usec(100), 7)); // p = 1 inside
    EXPECT_FALSE(fi.ueccAt(1, usec(200), 7));
    EXPECT_FALSE(fi.ueccAt(0, usec(150), 7)); // other drive
}

TEST(FaultInjector, SeedSelectsADifferentUeccPattern)
{
    FaultInjector a({uecc(0, 0, kTickNever, 0.5)}, 1, 1);
    FaultInjector b({uecc(0, 0, kTickNever, 0.5)}, 2, 1);
    int differs = 0;
    for (std::uint64_t token = 1; token < 200; ++token)
        differs += a.ueccAt(0, usec(1), token) !=
                           b.ueccAt(0, usec(1), token)
                       ? 1
                       : 0;
    EXPECT_GT(differs, 0);
}

} // namespace
} // namespace ssdrr::sim

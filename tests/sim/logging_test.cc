/**
 * @file
 * Tests for panic/fatal/warn reporting and the assertion macro.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/logging.hh"

namespace ssdrr::sim {
namespace {

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(SSDRR_PANIC("boom ", 42), std::logic_error);
}

TEST(Logging, PanicMessageCarriesFormattedArgs)
{
    try {
        SSDRR_PANIC("value=", 7, " name=", "x");
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("value=7"), std::string::npos) << msg;
        EXPECT_NE(msg.find("name=x"), std::string::npos) << msg;
    }
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(SSDRR_FATAL("user error"), std::runtime_error);
}

TEST(Logging, FatalIsNotLogicError)
{
    // fatal (user error) and panic (simulator bug) are distinct
    // types so tests can tell them apart.
    try {
        SSDRR_FATAL("config");
        FAIL();
    } catch (const std::logic_error &) {
        FAIL() << "fatal must not be a logic_error";
    } catch (const std::runtime_error &) {
        SUCCEED();
    }
}

TEST(Logging, WarnIncrementsCounterAndContinues)
{
    const std::uint64_t before = warnCount();
    SSDRR_WARN("just a warning");
    EXPECT_EQ(warnCount(), before + 1);
    SSDRR_WARN("another");
    EXPECT_EQ(warnCount(), before + 2);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(SSDRR_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertThrowsOnFalseWithCondition)
{
    try {
        const int x = 3;
        SSDRR_ASSERT(x == 4, "x was ", x);
        FAIL();
    } catch (const std::logic_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("x == 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("x was 3"), std::string::npos) << msg;
    }
}

TEST(Logging, FormatConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::format("a", 1, 2.5, 'c'), "a12.5c");
    EXPECT_EQ(detail::format(), "");
}

} // namespace
} // namespace ssdrr::sim

/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace ssdrr::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executedEvents(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executedEvents(), 3u);
}

TEST(EventQueue, SameTickRunsInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i) << "FIFO order violated at " << i;
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = kTickNever;
    eq.schedule(100, [&] {
        eq.scheduleAfter(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.schedule(21, [&] { ++ran; });
    eq.run(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1, [&] { ++ran; });
    eq.schedule(2, [&] { ++ran; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int ran = 0;
    const EventId id = eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
    eq.run();
}

TEST(EventQueue, CancelUnknownIdFails)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(0));
    EXPECT_FALSE(eq.cancel(12345));
}

TEST(EventQueue, PendingAccountsForCancellations)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.schedule(10, [&] {
        ticks.push_back(eq.now());
        eq.schedule(15, [&] { ticks.push_back(eq.now()); });
        // Same-tick insertion from within a callback also runs.
        eq.schedule(10, [&] { ticks.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 10, 15}));
}

TEST(EventQueue, CallbackMayCancelLaterEvent)
{
    EventQueue eq;
    int ran = 0;
    EventId victim = 0;
    victim = eq.schedule(50, [&] { ++ran; });
    eq.schedule(10, [&] { EXPECT_TRUE(eq.cancel(victim)); });
    eq.run();
    EXPECT_EQ(ran, 0);
    // now() advances only to the last *executed* event.
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, ManyEventsKeepTotalOrder)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 5000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.schedule(when, [&, when] {
            if (eq.now() < last)
                monotone = false;
            last = eq.now();
            EXPECT_EQ(eq.now(), when);
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.executedEvents(), 5000u);
}

TEST(EventQueue, CancelOfExecutedEventFailsHarmlessly)
{
    // The old lazy-marker kernel corrupted pending() when an id that
    // had already run was cancelled; the generation-stamped slot
    // table detects staleness instead.
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 0u);

    // The slot is reused by a new event; the stale id must not be
    // able to cancel it.
    const EventId next = eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.cancel(next));
    EXPECT_EQ(eq.pending(), 0u);
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 1u);
}

TEST(EventQueue, RunUntilHonorsHorizonPastCancelledFront)
{
    // A cancelled entry inside the horizon must not let a pending
    // event beyond the horizon execute: the horizon check has to
    // apply to the first *pending* event, not the raw heap top.
    EventQueue eq;
    int ran = 0;
    const EventId a = eq.schedule(5, [&] { ++ran; });
    eq.schedule(100, [&] { ++ran; });
    EXPECT_TRUE(eq.cancel(a));
    eq.run(50);
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_LE(eq.now(), 50u);
    // Incremental drivers must be able to keep scheduling inside
    // the horizon they ran to.
    eq.schedule(51, [&] { ++ran; });
    eq.run();
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, CancelOfCancelledSlotReusedByNewEventFails)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(a));
    eq.run(); // drains the lazily-deleted entry, frees the slot
    int ran = 0;
    eq.schedule(30, [&] { ++ran; });
    EXPECT_FALSE(eq.cancel(a)) << "stale id cancelled a reused slot";
    eq.run();
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, StressInterleavedScheduleCancelRun)
{
    // Deterministic adversarial mix of schedule/cancel/run against a
    // reference model. Exercises slot reuse, cancels of pending,
    // executed, cancelled and unknown ids, and FIFO ordering within
    // a tick.
    EventQueue eq;
    std::uint64_t rng = 0x1234567ull;
    auto next_rand = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    struct Tracked {
        EventId id;
        bool cancelled = false;
        bool executed = false;
    };
    std::vector<Tracked> events;
    std::uint64_t executed_count = 0;
    std::uint64_t expected_executed = 0;

    for (int round = 0; round < 200; ++round) {
        // Schedule a burst.
        const int burst = 1 + static_cast<int>(next_rand() % 8);
        for (int i = 0; i < burst; ++i) {
            const Tick when = eq.now() + next_rand() % 50;
            const std::size_t slot = events.size();
            events.push_back(Tracked{0});
            events[slot].id = eq.schedule(when, [&events, slot,
                                                 &executed_count] {
                events[slot].executed = true;
                ++executed_count;
            });
        }
        // Cancel a few random ids (any state).
        for (int i = 0; i < 3; ++i) {
            Tracked &t = events[next_rand() % events.size()];
            const bool ok = eq.cancel(t.id);
            const bool was_live = !t.cancelled && !t.executed;
            EXPECT_EQ(ok, was_live);
            if (ok)
                t.cancelled = true;
        }
        // Cancel an id that never existed.
        EXPECT_FALSE(eq.cancel(0));
        // Periodically run part or all of the timeline.
        if (round % 5 == 4) {
            eq.run(eq.now() + next_rand() % 100);
        }
        // pending() must always equal the model's live count at
        // sync points after a full drain.
        if (round % 20 == 19) {
            eq.run();
            std::size_t live = 0;
            for (const Tracked &t : events)
                if (!t.cancelled && !t.executed)
                    ++live;
            EXPECT_EQ(live, 0u);
            EXPECT_EQ(eq.pending(), 0u);
        }
    }
    eq.run();
    for (const Tracked &t : events) {
        EXPECT_NE(t.cancelled, t.executed)
            << "event must either cancel or execute, never both/neither";
        if (t.executed)
            ++expected_executed;
    }
    EXPECT_EQ(executed_count, expected_executed);
}

TEST(EventQueue, ScheduleBatchRunsInVectorOrderAndCountsEach)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventQueue::Callback> cbs;
    for (int i = 0; i < 5; ++i)
        cbs.emplace_back([&order, i] { order.push_back(i); });
    eq.schedule(10, [&order] { order.push_back(-1); });
    eq.scheduleBatch(10, std::move(cbs));
    eq.schedule(10, [&order] { order.push_back(-2); });
    eq.run();
    // One heap event, but it sequences like five schedule() calls
    // made back-to-back between the two neighbours.
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, -2}));
    EXPECT_EQ(eq.executedEvents(), 7u)
        << "each batched callback must count as one executed event";
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, ScheduleBatchSameTickReschedulesSequenceAfterBatch)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventQueue::Callback> cbs;
    cbs.emplace_back([&] {
        order.push_back(0);
        // Scheduled mid-batch at the same tick: must run after every
        // batched callback, exactly as with individual schedules.
        eq.schedule(10, [&order] { order.push_back(9); });
    });
    cbs.emplace_back([&order] { order.push_back(1); });
    eq.scheduleBatch(10, std::move(cbs));
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 9}));
}

TEST(EventQueue, CallbackMayCancelSameTickLaterEventMidDrain)
{
    // The drain-tick loop extracts the whole tick before running any
    // of it, so a cancellation of a same-tick sibling lands *after*
    // extraction; each entry must re-check its slot at execution
    // time for the cancel to be honored.
    EventQueue eq;
    std::vector<int> order;
    EventId victim = 0;
    eq.schedule(10, [&] {
        order.push_back(0);
        EXPECT_TRUE(eq.cancel(victim));
    });
    victim = eq.schedule(10, [&order] { order.push_back(1); });
    eq.schedule(10, [&order] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
    EXPECT_EQ(eq.executedEvents(), 2u)
        << "a cancelled-mid-drain entry must not count as executed";
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, NextPendingTickIsAConstPureProbe)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextPendingTick(), kTickNever);
    const EventId a = eq.schedule(30, [] {});
    eq.schedule(50, [] {});

    // Const-qualified: the executor probes through a const path, so
    // any heap mutation inside would fail to compile.
    const EventQueue &ceq = eq;
    EXPECT_EQ(ceq.nextPendingTick(), 30u);

    // Repeated probes are idempotent and leave the queue untouched.
    EXPECT_EQ(ceq.nextPendingTick(), 30u);
    EXPECT_EQ(eq.pending(), 2u);

    // cancel() restores the root-is-pending invariant eagerly, so
    // the probe never sees (or has to clean up) a cancelled root.
    EXPECT_TRUE(eq.cancel(a));
    EXPECT_EQ(ceq.nextPendingTick(), 50u);
    eq.run();
    EXPECT_EQ(ceq.nextPendingTick(), kTickNever);
}

/**
 * Seeded stress script interleaving schedule, scheduleBatch, cancel
 * and partial run() calls, executed twice: once with bursts routed
 * through scheduleBatch, once with every callback scheduled
 * individually. The drain-tick contract says the two are
 * observationally identical — same execution order, same
 * executedEvents — for ANY script that never cancels a batched
 * callback (the documented restriction on scheduleBatch).
 */
TEST(EventQueue, StressBatchedMatchesUnbatched)
{
    struct Observation {
        std::vector<int> order;
        std::uint64_t executed;
        Tick end;
    };

    auto run_script = [](bool batched) {
        EventQueue eq;
        Observation obs;
        std::uint64_t rng = 0x9e3779b97f4a7c15ull;
        auto next_rand = [&rng] {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            return rng;
        };
        int tag = 0;
        // Ids of individually scheduled (cancellable) events, by
        // logical position — the positions match across variants
        // even though the id values do not.
        std::vector<EventId> cancellable;

        for (int round = 0; round < 120; ++round) {
            const std::uint64_t kind = next_rand() % 4;
            if (kind == 0) {
                // A same-tick burst.
                const Tick when = eq.now() + next_rand() % 40;
                const int n = 2 + static_cast<int>(next_rand() % 6);
                if (batched) {
                    std::vector<EventQueue::Callback> cbs;
                    for (int i = 0; i < n; ++i) {
                        cbs.emplace_back([&obs, tag] {
                            obs.order.push_back(tag);
                        });
                        ++tag;
                    }
                    eq.scheduleBatch(when, std::move(cbs));
                } else {
                    for (int i = 0; i < n; ++i) {
                        eq.schedule(when, [&obs, tag] {
                            obs.order.push_back(tag);
                        });
                        ++tag;
                    }
                }
            } else if (kind == 1) {
                // A lone cancellable event.
                const Tick when = eq.now() + next_rand() % 40;
                cancellable.push_back(
                    eq.schedule(when, [&obs, tag] {
                        obs.order.push_back(tag);
                    }));
                ++tag;
            } else if (kind == 2 && !cancellable.empty()) {
                // Cancel by logical position; both variants pick the
                // same position and observe the same success/failure
                // (the event is live in one iff live in the other).
                eq.cancel(
                    cancellable[next_rand() % cancellable.size()]);
            } else {
                // Drain part of the timeline.
                eq.run(eq.now() + next_rand() % 60);
            }
        }
        eq.run();
        obs.executed = eq.executedEvents();
        obs.end = eq.now();
        return obs;
    };

    const Observation batched = run_script(true);
    const Observation unbatched = run_script(false);
    EXPECT_EQ(batched.order, unbatched.order)
        << "batched bursts must execute in the same global order as "
           "individually scheduled ones";
    EXPECT_EQ(batched.executed, unbatched.executed)
        << "scheduleBatch must credit executedEvents per callback";
    EXPECT_EQ(batched.end, unbatched.end);
    EXPECT_GT(batched.executed, 0u);
}

TEST(EventQueuePanic, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueuePanic, NullCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(10, EventQueue::Callback{}),
                 std::logic_error);
}

} // namespace
} // namespace ssdrr::sim

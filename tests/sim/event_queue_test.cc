/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace ssdrr::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executedEvents(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executedEvents(), 3u);
}

TEST(EventQueue, SameTickRunsInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i) << "FIFO order violated at " << i;
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = kTickNever;
    eq.schedule(100, [&] {
        eq.scheduleAfter(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.schedule(21, [&] { ++ran; });
    eq.run(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1, [&] { ++ran; });
    eq.schedule(2, [&] { ++ran; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int ran = 0;
    const EventId id = eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
    eq.run();
}

TEST(EventQueue, CancelUnknownIdFails)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(0));
    EXPECT_FALSE(eq.cancel(12345));
}

TEST(EventQueue, PendingAccountsForCancellations)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.schedule(10, [&] {
        ticks.push_back(eq.now());
        eq.schedule(15, [&] { ticks.push_back(eq.now()); });
        // Same-tick insertion from within a callback also runs.
        eq.schedule(10, [&] { ticks.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 10, 15}));
}

TEST(EventQueue, CallbackMayCancelLaterEvent)
{
    EventQueue eq;
    int ran = 0;
    EventId victim = 0;
    victim = eq.schedule(50, [&] { ++ran; });
    eq.schedule(10, [&] { EXPECT_TRUE(eq.cancel(victim)); });
    eq.run();
    EXPECT_EQ(ran, 0);
    // now() advances only to the last *executed* event.
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, ManyEventsKeepTotalOrder)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 5000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.schedule(when, [&, when] {
            if (eq.now() < last)
                monotone = false;
            last = eq.now();
            EXPECT_EQ(eq.now(), when);
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.executedEvents(), 5000u);
}

TEST(EventQueue, CancelOfExecutedEventFailsHarmlessly)
{
    // The old lazy-marker kernel corrupted pending() when an id that
    // had already run was cancelled; the generation-stamped slot
    // table detects staleness instead.
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 0u);

    // The slot is reused by a new event; the stale id must not be
    // able to cancel it.
    const EventId next = eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.cancel(next));
    EXPECT_EQ(eq.pending(), 0u);
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 1u);
}

TEST(EventQueue, RunUntilHonorsHorizonPastCancelledFront)
{
    // A cancelled entry inside the horizon must not let a pending
    // event beyond the horizon execute: the horizon check has to
    // apply to the first *pending* event, not the raw heap top.
    EventQueue eq;
    int ran = 0;
    const EventId a = eq.schedule(5, [&] { ++ran; });
    eq.schedule(100, [&] { ++ran; });
    EXPECT_TRUE(eq.cancel(a));
    eq.run(50);
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_LE(eq.now(), 50u);
    // Incremental drivers must be able to keep scheduling inside
    // the horizon they ran to.
    eq.schedule(51, [&] { ++ran; });
    eq.run();
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, CancelOfCancelledSlotReusedByNewEventFails)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(a));
    eq.run(); // drains the lazily-deleted entry, frees the slot
    int ran = 0;
    eq.schedule(30, [&] { ++ran; });
    EXPECT_FALSE(eq.cancel(a)) << "stale id cancelled a reused slot";
    eq.run();
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, StressInterleavedScheduleCancelRun)
{
    // Deterministic adversarial mix of schedule/cancel/run against a
    // reference model. Exercises slot reuse, cancels of pending,
    // executed, cancelled and unknown ids, and FIFO ordering within
    // a tick.
    EventQueue eq;
    std::uint64_t rng = 0x1234567ull;
    auto next_rand = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    struct Tracked {
        EventId id;
        bool cancelled = false;
        bool executed = false;
    };
    std::vector<Tracked> events;
    std::uint64_t executed_count = 0;
    std::uint64_t expected_executed = 0;

    for (int round = 0; round < 200; ++round) {
        // Schedule a burst.
        const int burst = 1 + static_cast<int>(next_rand() % 8);
        for (int i = 0; i < burst; ++i) {
            const Tick when = eq.now() + next_rand() % 50;
            const std::size_t slot = events.size();
            events.push_back(Tracked{0});
            events[slot].id = eq.schedule(when, [&events, slot,
                                                 &executed_count] {
                events[slot].executed = true;
                ++executed_count;
            });
        }
        // Cancel a few random ids (any state).
        for (int i = 0; i < 3; ++i) {
            Tracked &t = events[next_rand() % events.size()];
            const bool ok = eq.cancel(t.id);
            const bool was_live = !t.cancelled && !t.executed;
            EXPECT_EQ(ok, was_live);
            if (ok)
                t.cancelled = true;
        }
        // Cancel an id that never existed.
        EXPECT_FALSE(eq.cancel(0));
        // Periodically run part or all of the timeline.
        if (round % 5 == 4) {
            eq.run(eq.now() + next_rand() % 100);
        }
        // pending() must always equal the model's live count at
        // sync points after a full drain.
        if (round % 20 == 19) {
            eq.run();
            std::size_t live = 0;
            for (const Tracked &t : events)
                if (!t.cancelled && !t.executed)
                    ++live;
            EXPECT_EQ(live, 0u);
            EXPECT_EQ(eq.pending(), 0u);
        }
    }
    eq.run();
    for (const Tracked &t : events) {
        EXPECT_NE(t.cancelled, t.executed)
            << "event must either cancel or execute, never both/neither";
        if (t.executed)
            ++expected_executed;
    }
    EXPECT_EQ(executed_count, expected_executed);
}

TEST(EventQueuePanic, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueuePanic, NullCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(10, EventQueue::Callback{}),
                 std::logic_error);
}

} // namespace
} // namespace ssdrr::sim

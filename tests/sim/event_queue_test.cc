/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace ssdrr::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executedEvents(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executedEvents(), 3u);
}

TEST(EventQueue, SameTickRunsInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i) << "FIFO order violated at " << i;
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = kTickNever;
    eq.schedule(100, [&] {
        eq.scheduleAfter(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.schedule(21, [&] { ++ran; });
    eq.run(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1, [&] { ++ran; });
    eq.schedule(2, [&] { ++ran; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int ran = 0;
    const EventId id = eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
    eq.run();
}

TEST(EventQueue, CancelUnknownIdFails)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(0));
    EXPECT_FALSE(eq.cancel(12345));
}

TEST(EventQueue, PendingAccountsForCancellations)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.schedule(10, [&] {
        ticks.push_back(eq.now());
        eq.schedule(15, [&] { ticks.push_back(eq.now()); });
        // Same-tick insertion from within a callback also runs.
        eq.schedule(10, [&] { ticks.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 10, 15}));
}

TEST(EventQueue, CallbackMayCancelLaterEvent)
{
    EventQueue eq;
    int ran = 0;
    EventId victim = 0;
    victim = eq.schedule(50, [&] { ++ran; });
    eq.schedule(10, [&] { EXPECT_TRUE(eq.cancel(victim)); });
    eq.run();
    EXPECT_EQ(ran, 0);
    // now() advances only to the last *executed* event.
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, ManyEventsKeepTotalOrder)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 5000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.schedule(when, [&, when] {
            if (eq.now() < last)
                monotone = false;
            last = eq.now();
            EXPECT_EQ(eq.now(), when);
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.executedEvents(), 5000u);
}

TEST(EventQueuePanic, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueuePanic, NullCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(10, EventQueue::Callback{}),
                 std::logic_error);
}

} // namespace
} // namespace ssdrr::sim

/**
 * @file
 * Tests for the time-unit helpers used by every latency parameter.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace ssdrr::sim {
namespace {

TEST(TimeUnits, ConversionsAreConsistent)
{
    EXPECT_EQ(nsec(1), 1u);
    EXPECT_EQ(usec(1), 1000u);
    EXPECT_EQ(msec(1), 1000000u);
    EXPECT_EQ(sec(1), 1000000000u);
    EXPECT_EQ(usec(24), 24u * 1000u);
    EXPECT_EQ(msec(5), 5u * 1000u * 1000u);
}

TEST(TimeUnits, FractionalInputsTruncate)
{
    EXPECT_EQ(usec(0.5), 500u);
    EXPECT_EQ(msec(0.66), 660000u);
    EXPECT_EQ(nsec(0.9), 0u);
}

TEST(TimeUnits, RoundTripThroughReporting)
{
    EXPECT_DOUBLE_EQ(toUsec(usec(117)), 117.0);
    EXPECT_DOUBLE_EQ(toMsec(msec(5)), 5.0);
    EXPECT_DOUBLE_EQ(toUsec(sec(1)), 1e6);
}

TEST(TimeUnits, NeverSentinelIsMaximal)
{
    EXPECT_GT(kTickNever, sec(1e9));
    EXPECT_EQ(kTickNever, std::numeric_limits<Tick>::max());
}

} // namespace
} // namespace ssdrr::sim

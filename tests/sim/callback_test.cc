/**
 * @file
 * Tests for the small-buffer-optimized move-only callable.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "sim/callback.hh"

namespace ssdrr::sim {
namespace {

TEST(InlineCallback, DefaultIsEmptyAndInvokePanics)
{
    InlineCallback cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    EXPECT_THROW(cb(), std::logic_error);
    InlineCallback null_cb(nullptr);
    EXPECT_FALSE(static_cast<bool>(null_cb));
}

TEST(InlineCallback, InvokesSmallCaptureInline)
{
    int hits = 0;
    InlineCallback cb([&hits] { ++hits; });
    EXPECT_TRUE(static_cast<bool>(cb));
    EXPECT_TRUE(cb.storedInline());
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap)
{
    std::array<std::uint64_t, 32> big{}; // 256 bytes > 64-byte SBO
    big[31] = 7;
    int out = 0;
    InlineCallback cb([big, &out] {
        out = static_cast<int>(big[31]);
    });
    EXPECT_FALSE(cb.storedInline());
    cb();
    EXPECT_EQ(out, 7);
}

TEST(InlineCallback, MoveTransfersStateAndEmptiesSource)
{
    int hits = 0;
    InlineCallback a([&hits] { ++hits; });
    InlineCallback b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    InlineCallback c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveOnlyCapturesWork)
{
    auto p = std::make_unique<int>(41);
    int seen = 0;
    InlineCallback cb([p = std::move(p), &seen] { seen = *p + 1; });
    InlineCallback moved = std::move(cb);
    moved();
    EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, DestructionReleasesCapture)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    {
        InlineCallback cb([token = std::move(token)] { (void)token; });
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(InlineCallback, AssignNullptrClears)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    InlineCallback cb([token = std::move(token)] { (void)token; });
    cb = nullptr;
    EXPECT_FALSE(static_cast<bool>(cb));
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, ForwardsArgumentsAndReturn)
{
    InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);

    // Heap-fallback path with arguments.
    std::array<char, 128> pad{};
    pad[0] = 1;
    InlineFunction<int(int)> f(
        [pad](int x) { return x + pad[0]; });
    EXPECT_FALSE(f.storedInline());
    EXPECT_EQ(f(10), 11);
}

} // namespace
} // namespace ssdrr::sim

/**
 * @file
 * Unit tests for the conservative time-window synchronizer: message
 * causality (nothing lands inside the window it was sent from),
 * deterministic mailbox ordering, clock alignment, idle-window
 * skipping, and bit-identical execution across worker counts on a
 * synthetic multi-domain workload.
 */

#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "sim/parallel_executor.hh"

namespace ssdrr::sim {
namespace {

constexpr Tick kWindow = 100;

/** One synthetic domain: logs (tick, tag) for every executed event. */
struct Recorder {
    EventQueue q;
    std::vector<std::pair<Tick, int>> log;

    void
    record(int tag)
    {
        log.emplace_back(q.now(), tag);
    }
};

TEST(ParallelExecutor, DrainsLocalEventsAndAlignsClocks)
{
    Recorder a, b;
    ParallelExecutor exec(kWindow, 1);
    exec.addDomain(a.q);
    exec.addDomain(b.q);

    a.q.schedule(10, [&] { a.record(1); });
    a.q.schedule(500, [&] { a.record(2); });
    b.q.schedule(40, [&] { b.record(3); });

    const Tick end = exec.run();
    EXPECT_EQ(end, 500u);
    EXPECT_EQ(a.q.now(), 500u);
    EXPECT_EQ(b.q.now(), 500u); // aligned past its own last event
    ASSERT_EQ(a.log.size(), 2u);
    ASSERT_EQ(b.log.size(), 1u);
}

TEST(ParallelExecutor, SkipsIdleGapsInsteadOfSteppingWindows)
{
    Recorder a;
    ParallelExecutor exec(kWindow, 1);
    exec.addDomain(a.q);
    a.q.schedule(5, [&] { a.record(1); });
    a.q.schedule(1000000, [&] { a.record(2); });
    exec.run();
    // Two events a million ticks apart must cost ~2 windows, not
    // 10000: the next window starts at the global next-event tick.
    EXPECT_LE(exec.windowsRun(), 4u);
}

TEST(ParallelExecutor, MessagesCrossDomainsAtTheModelledLatency)
{
    Recorder a, b;
    ParallelExecutor exec(kWindow, 1);
    const auto da = exec.addDomain(a.q);
    const auto db = exec.addDomain(b.q);

    // a pings b; b pongs back; latency = one window each way.
    a.q.schedule(10, [&, da, db] {
        a.record(1);
        exec.send(da, db, a.q.now() + kWindow, [&, da, db] {
            b.record(2);
            exec.send(db, da, b.q.now() + kWindow,
                      [&] { a.record(3); });
        });
    });
    exec.run();

    ASSERT_EQ(a.log.size(), 2u);
    ASSERT_EQ(b.log.size(), 1u);
    EXPECT_EQ(b.log[0], std::make_pair(Tick{110}, 2));
    EXPECT_EQ(a.log[1], std::make_pair(Tick{210}, 3));
}

TEST(ParallelExecutor, SameTickDeliveriesOrderBySenderThenSendOrder)
{
    // Three senders race messages to one receiver at a common
    // delivery tick; execution order must be (sender id, send
    // order), never influenced by which worker ran which sender.
    // The order log is appended only by the receiver's callbacks
    // (one domain executes serially), so it captures the true
    // delivery order without races.
    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(threads);
        Recorder recv;
        std::vector<std::unique_ptr<Recorder>> senders;
        std::vector<int> order;
        ParallelExecutor exec(kWindow, threads);
        const auto dr = exec.addDomain(recv.q);
        std::vector<ParallelExecutor::DomainId> ds;
        for (int s = 0; s < 3; ++s) {
            senders.push_back(std::make_unique<Recorder>());
            ds.push_back(exec.addDomain(senders.back()->q));
        }
        for (int s = 2; s >= 0; --s) { // registration order != send order
            Recorder &sd = *senders[s];
            const auto dom = ds[s];
            sd.q.schedule(10, [&exec, &sd, &order, dom, dr, s] {
                for (int k = 0; k < 2; ++k)
                    exec.send(dom, dr, sd.q.now() + kWindow,
                              [&order, s, k] {
                                  order.push_back(10 * s + k);
                              });
            });
        }
        exec.run();
        EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 20, 21}));
        EXPECT_EQ(recv.q.executedEvents(), 6u);
    }
}

TEST(ParallelExecutor, WorkerCountDoesNotChangeExecution)
{
    // A synthetic token-passing workload dense enough to span many
    // windows: domain i, on receiving a token, does local work (two
    // self-events) and forwards the token to (i + 1) % N a window
    // later. The full per-domain logs must match across worker
    // counts.
    auto run = [](unsigned threads) {
        constexpr int kDomains = 5;
        std::vector<std::unique_ptr<Recorder>> doms;
        ParallelExecutor exec(kWindow, threads);
        std::vector<ParallelExecutor::DomainId> ids;
        for (int i = 0; i < kDomains; ++i) {
            doms.push_back(std::make_unique<Recorder>());
            ids.push_back(exec.addDomain(doms.back()->q));
        }
        struct Ctx {
            ParallelExecutor *exec;
            std::vector<std::unique_ptr<Recorder>> *doms;
            std::vector<ParallelExecutor::DomainId> *ids;
            int hops = 0;
        } ctx{&exec, &doms, &ids, 0};

        // Token handler: local work then forward until 200 hops.
        std::function<void(int)> hop = [&ctx, &hop](int i) {
            Recorder &r = *(*ctx.doms)[i];
            r.record(1000 + i);
            r.q.scheduleAfter(7, [&r, i] { r.record(2000 + i); });
            r.q.scheduleAfter(13, [&r, i] { r.record(3000 + i); });
            if (++ctx.hops >= 200)
                return;
            const int n = (i + 1) % static_cast<int>(ctx.doms->size());
            ctx.exec->send((*ctx.ids)[i], (*ctx.ids)[n],
                           r.q.now() + kWindow, [&hop, n] { hop(n); });
        };
        doms[0]->q.schedule(1, [&hop] { hop(0); });
        exec.run();

        std::vector<std::vector<std::pair<Tick, int>>> logs;
        for (auto &d : doms)
            logs.push_back(d->log);
        return logs;
    };

    const auto one = run(1);
    const auto two = run(2);
    const auto many = run(8);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, many);
    // Sanity: the token actually circulated.
    std::size_t total = 0;
    for (const auto &l : one)
        total += l.size();
    EXPECT_EQ(total, 600u); // 200 hops x 3 records
}

TEST(ParallelExecutor, DoorbellBatchingIsBitIdenticalAndEngages)
{
    // Three senders race two messages each to one receiver at a
    // common delivery tick — exactly the shape doorbell batching
    // coalesces. The delivery order, the receiver's executed-event
    // count, and a second staggered-tick wave must all be identical
    // with batching on and off; the coalesced counter proves the
    // batched run actually merged mailbox crossings rather than
    // trivially passing because nothing coalesced.
    struct Outcome {
        std::vector<int> order;
        std::uint64_t executed = 0;
        std::uint64_t routed = 0;
        std::uint64_t coalesced = 0;
    };
    auto run = [](bool batch) {
        Outcome out;
        Recorder recv;
        std::vector<std::unique_ptr<Recorder>> senders;
        ParallelExecutor exec(kWindow, 2, batch);
        const auto dr = exec.addDomain(recv.q);
        std::vector<ParallelExecutor::DomainId> ds;
        for (int s = 0; s < 3; ++s) {
            senders.push_back(std::make_unique<Recorder>());
            ds.push_back(exec.addDomain(senders.back()->q));
        }
        for (int s = 0; s < 3; ++s) {
            Recorder &sd = *senders[s];
            const auto dom = ds[s];
            sd.q.schedule(10, [&exec, &sd, &out, dom, dr, s] {
                for (int k = 0; k < 2; ++k) {
                    // First wave shares one delivery tick; second
                    // wave staggers per sender so singletons mix
                    // with coalescible runs in the same barrier.
                    exec.send(dom, dr, sd.q.now() + kWindow,
                              [&out, s, k] {
                                  out.order.push_back(10 * s + k);
                              });
                    exec.send(dom, dr, sd.q.now() + 2 * kWindow + s,
                              [&out, s, k] {
                                  out.order.push_back(100 + 10 * s + k);
                              });
                }
            });
        }
        exec.run();
        out.executed = recv.q.executedEvents();
        out.routed = exec.messagesRouted();
        out.coalesced = exec.messagesCoalesced();
        return out;
    };

    const Outcome batched = run(true);
    const Outcome plain = run(false);
    EXPECT_EQ(batched.order, plain.order);
    EXPECT_EQ(batched.executed, plain.executed);
    EXPECT_EQ(batched.executed, 12u);
    EXPECT_EQ(batched.routed, plain.routed);
    EXPECT_EQ(plain.coalesced, 0u);
    // Wave 1: 6 messages at one tick -> 5 merged. Wave 2: three
    // per-sender pairs -> 1 merged each.
    EXPECT_EQ(batched.coalesced, 8u);
}

TEST(ParallelExecutor, FastForwardRunsLoneDomainWindowsInline)
{
    // A strict ping-pong leaves exactly one domain with in-window
    // work at every step — the shape idle-window fast-forward exists
    // for. The skip decision derives from queue state only, so the
    // logs AND the windowsRun/windowsSkipped counters must be
    // identical at every worker count; parks/spins are timing-
    // dependent and deliberately unchecked.
    struct Outcome {
        std::vector<std::pair<Tick, int>> log_a, log_b;
        std::uint64_t windows = 0;
        std::uint64_t skipped = 0;
    };
    auto run = [](unsigned threads) {
        Outcome out;
        Recorder a, b;
        ParallelExecutor exec(kWindow, threads);
        const auto da = exec.addDomain(a.q);
        const auto db = exec.addDomain(b.q);
        struct Ctx {
            ParallelExecutor *exec;
            Recorder *a, *b;
            ParallelExecutor::DomainId da, db;
            int hops = 0;
        } ctx{&exec, &a, &b, da, db, 0};
        std::function<void(bool)> hop = [&ctx, &hop](bool at_a) {
            Recorder &r = at_a ? *ctx.a : *ctx.b;
            r.record(at_a ? 1 : 2);
            if (++ctx.hops >= 40)
                return;
            ctx.exec->send(at_a ? ctx.da : ctx.db,
                           at_a ? ctx.db : ctx.da,
                           r.q.now() + kWindow,
                           [&hop, at_a] { hop(!at_a); });
        };
        a.q.schedule(1, [&hop] { hop(true); });
        exec.run();
        out.log_a = a.log;
        out.log_b = b.log;
        out.windows = exec.windowsRun();
        out.skipped = exec.windowsSkipped();
        return out;
    };

    const Outcome one = run(1);
    EXPECT_EQ(one.log_a.size() + one.log_b.size(), 40u);
    // Every window of a ping-pong has a lone active domain.
    EXPECT_GT(one.skipped, 0u);
    EXPECT_EQ(one.skipped, one.windows);
    for (unsigned threads : {2u, 4u}) {
        SCOPED_TRACE(threads);
        const Outcome n = run(threads);
        EXPECT_EQ(n.log_a, one.log_a);
        EXPECT_EQ(n.log_b, one.log_b);
        EXPECT_EQ(n.windows, one.windows);
        EXPECT_EQ(n.skipped, one.skipped);
    }
}

TEST(ParallelExecutor, ParkingCountersAccountSingleThreadAsZero)
{
    // With no worker pool there is no handshake to wait on: the
    // parking counters must stay exactly zero (they feed the bench
    // JSON, where a nonzero single-thread park count would be a
    // bug), and dense multi-domain work must still complete.
    Recorder a, b, c;
    ParallelExecutor exec(kWindow, 1);
    exec.addDomain(a.q);
    exec.addDomain(b.q);
    exec.addDomain(c.q);
    for (Tick t = 1; t <= 5 * kWindow; t += 7) {
        a.q.schedule(t, [&] { a.record(1); });
        b.q.schedule(t, [&] { b.record(2); });
        c.q.schedule(t, [&] { c.record(3); });
    }
    exec.run();
    EXPECT_EQ(exec.parks(), 0u);
    EXPECT_EQ(exec.spins(), 0u);
    EXPECT_GT(exec.windowsRun(), 0u);
    EXPECT_EQ(a.log.size(), b.log.size());
}

TEST(ParallelExecutor, ParkedWorkersSurviveSparseThenDensePhases)
{
    // Alternating dense (all domains active -> full handshake) and
    // sparse (lone domain -> fast-forward, fleet stays parked)
    // phases: workers must wake correctly after arbitrarily long
    // parked stretches, and the results must not depend on the
    // worker count. Run under tsan in CI, this is the lost-wakeup
    // and data-race probe for the park/wake handshake.
    auto run = [](unsigned threads) {
        Recorder a, b;
        ParallelExecutor exec(kWindow, threads);
        exec.addDomain(a.q);
        exec.addDomain(b.q);
        Tick t = 1;
        for (int phase = 0; phase < 6; ++phase) {
            if (phase % 2 == 0) {
                // Dense: both domains busy for a few windows.
                for (Tick d = 0; d < 3 * kWindow; d += 11) {
                    a.q.schedule(t + d, [&a] { a.record(1); });
                    b.q.schedule(t + d, [&b] { b.record(2); });
                }
                t += 3 * kWindow;
            } else {
                // Sparse: a lone domain, far apart — fast-forwarded
                // windows during which the fleet parks.
                for (int i = 0; i < 4; ++i) {
                    a.q.schedule(t, [&a] { a.record(3); });
                    t += 20 * kWindow;
                }
            }
        }
        exec.run();
        return std::make_tuple(a.log, b.log, exec.windowsRun(),
                               exec.windowsSkipped());
    };
    const auto one = run(1);
    EXPECT_GT(std::get<3>(one), 0u);
    const auto two = run(2);
    const auto four = run(4);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
}

TEST(ParallelExecutor, RunCanBeCalledAgainAfterNewWork)
{
    Recorder a;
    ParallelExecutor exec(kWindow, 2);
    exec.addDomain(a.q);
    a.q.schedule(10, [&] { a.record(1); });
    exec.run();
    ASSERT_EQ(a.log.size(), 1u);
    a.q.schedule(a.q.now() + 5, [&] { a.record(2); });
    exec.run();
    ASSERT_EQ(a.log.size(), 2u);
    EXPECT_EQ(a.log[1].second, 2);
}

} // namespace
} // namespace ssdrr::sim

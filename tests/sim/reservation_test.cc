/**
 * @file
 * Unit and property tests for the gap-filling reservation timeline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/reservation.hh"
#include "sim/rng.hh"

namespace ssdrr::sim {
namespace {

TEST(Reservation, FirstGrantAtEarliest)
{
    ReservationTimeline tl;
    EXPECT_EQ(tl.acquire(100, 10), 100u);
    EXPECT_EQ(tl.horizon(), 110u);
    EXPECT_EQ(tl.grants(), 1u);
    EXPECT_EQ(tl.totalBusy(), 10u);
}

TEST(Reservation, ConflictBumpsPastExistingInterval)
{
    ReservationTimeline tl;
    tl.acquire(100, 10);
    EXPECT_EQ(tl.acquire(105, 10), 110u);
    EXPECT_EQ(tl.horizon(), 120u);
}

TEST(Reservation, FillsGapBetweenReservations)
{
    ReservationTimeline tl;
    tl.acquire(0, 10);    // [0, 10)
    tl.acquire(100, 10);  // [100, 110)
    // A 20-tick window fits in the gap: a later-arriving independent
    // transaction interleaves, unlike a busy-until watermark.
    EXPECT_EQ(tl.acquire(0, 20), 10u);
    EXPECT_EQ(tl.acquire(0, 70), 30u) << "fills remaining gap exactly";
    EXPECT_EQ(tl.acquire(0, 1), 110u) << "timeline now solid until 110";
}

TEST(Reservation, TooSmallGapIsSkipped)
{
    ReservationTimeline tl;
    tl.acquire(0, 10);   // [0, 10)
    tl.acquire(15, 10);  // [15, 25)
    // 5-tick gap at [10, 15) cannot hold 6 ticks.
    EXPECT_EQ(tl.acquire(0, 6), 25u);
    // But a 5-tick request fits exactly.
    EXPECT_EQ(tl.acquire(0, 5), 10u);
}

TEST(Reservation, EarliestInsideExistingIntervalBumps)
{
    ReservationTimeline tl;
    tl.acquire(10, 20); // [10, 30)
    EXPECT_EQ(tl.acquire(15, 5), 30u);
}

TEST(Reservation, AdjacentIntervalsMerge)
{
    ReservationTimeline tl;
    tl.acquire(0, 10);
    tl.acquire(10, 10);
    tl.acquire(20, 10);
    EXPECT_EQ(tl.intervals(), 1u) << "contiguous grants merge";
    EXPECT_EQ(tl.horizon(), 30u);
}

TEST(Reservation, ReleaseBeforeDropsOnlyFinishedIntervals)
{
    ReservationTimeline tl;
    tl.acquire(0, 10);
    tl.acquire(50, 10);
    tl.acquire(100, 10);
    EXPECT_EQ(tl.intervals(), 3u);
    tl.releaseBefore(60);
    EXPECT_EQ(tl.intervals(), 1u);
    // Future reservations still respect the surviving interval.
    EXPECT_EQ(tl.acquire(100, 5), 110u);
    // totalBusy is cumulative, not affected by release.
    EXPECT_EQ(tl.totalBusy(), 35u);
}

TEST(Reservation, ZeroEarliestManyBackToBack)
{
    ReservationTimeline tl;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(tl.acquire(0, 7), static_cast<Tick>(7 * i));
    EXPECT_EQ(tl.totalBusy(), 700u);
}

TEST(ReservationPanic, ZeroDurationPanics)
{
    ReservationTimeline tl;
    EXPECT_THROW(tl.acquire(0, 0), std::logic_error);
}

/**
 * Property: under random traffic, grants never overlap, never start
 * before their earliest, and the greedy-first-fit grant is at least
 * as early as a naive busy-until watermark would give.
 */
class ReservationProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReservationProperty, GrantsNeverOverlapAndRespectEarliest)
{
    Rng rng(GetParam());
    ReservationTimeline tl;
    std::vector<std::pair<Tick, Tick>> granted; // [start, end)
    Tick watermark = 0;                         // naive model

    for (int i = 0; i < 400; ++i) {
        const Tick earliest = rng.uniformInt(2000);
        const Tick dur = 1 + rng.uniformInt(30);
        const Tick start = tl.acquire(earliest, dur);
        ASSERT_GE(start, earliest);
        for (const auto &[s, e] : granted) {
            const bool disjoint = start + dur <= s || start >= e;
            ASSERT_TRUE(disjoint)
                << "overlap: [" << start << "," << start + dur
                << ") vs [" << s << "," << e << ")";
        }
        granted.emplace_back(start, start + dur);
        // The naive watermark grant:
        const Tick naive = std::max(earliest, watermark);
        watermark = naive + dur;
        ASSERT_LE(start, naive)
            << "gap filling must never be worse than busy-until";
    }
    // Conservation: total busy equals the sum of granted durations.
    Tick sum = 0;
    for (const auto &[s, e] : granted)
        sum += e - s;
    EXPECT_EQ(tl.totalBusy(), sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservationProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

} // namespace
} // namespace ssdrr::sim

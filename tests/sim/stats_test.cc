/**
 * @file
 * Tests for counters, accumulators, histograms and the stat registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/stats.hh"

namespace ssdrr::sim {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsAllZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    // Population variance of this classic dataset is exactly 4.
    EXPECT_NEAR(a.variance(), 4.0, 1e-12);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, HandlesNegativeValues)
{
    Accumulator a;
    a.add(-5.0);
    a.add(5.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_NEAR(a.variance(), 25.0, 1e-12);
}

TEST(Accumulator, WelfordIsNumericallyStable)
{
    // Large offset + small variance breaks naive sum-of-squares.
    Accumulator a;
    const double base = 1e9;
    for (int i = 0; i < 1000; ++i)
        a.add(base + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(a.variance(), 1.0, 1e-6);
}

TEST(Accumulator, ResetClearsState)
{
    Accumulator a;
    a.add(3.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    a.add(7.0);
    EXPECT_DOUBLE_EQ(a.mean(), 7.0);
    EXPECT_DOUBLE_EQ(a.min(), 7.0);
}

TEST(Histogram, PercentilesOfKnownData)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 50.0);
    EXPECT_LE(p50, 51.0);
    const double p99 = h.percentile(99.0);
    EXPECT_GE(p99, 99.0);
    EXPECT_LE(p99, 100.0);
}

TEST(Histogram, UnsortedInsertStillSortsLazily)
{
    Histogram h;
    for (double v : {5.0, 1.0, 4.0, 2.0, 3.0})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
    // Adding after a percentile query must still be seen.
    h.add(0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
}

TEST(Histogram, ResetEmpties)
{
    Histogram h;
    h.add(1.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, PercentileWithinDocumentedRelativeError)
{
    Histogram h;
    std::vector<double> exact;
    // Log-spread data across several octaves.
    double v = 0.37;
    for (int i = 0; i < 5000; ++i) {
        h.add(v);
        exact.push_back(v);
        v *= 1.0021;
    }
    std::sort(exact.begin(), exact.end());
    for (double p : {10.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(exact.size())));
        const double want = exact[rank - 1];
        const double got = h.percentile(p);
        EXPECT_NEAR(got, want, want * Histogram::relativeError())
            << "p" << p;
    }
}

TEST(Histogram, MergeEqualsCombinedRecording)
{
    // The ROADMAP histogram-merge property: recording two streams
    // separately and merging must equal recording them into one
    // histogram — bucket-exact, so every percentile matches.
    Histogram reads, writes, combined;
    std::uint64_t rng = 99;
    for (int i = 0; i < 20000; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const double v =
            1.0 + static_cast<double>(rng % 1000000) / 37.0;
        if (i % 3 == 0) {
            writes.add(v);
        } else {
            reads.add(v);
        }
        combined.add(v);
    }
    Histogram merged = reads;
    merged.merge(writes);
    EXPECT_EQ(merged.count(), combined.count());
    // Sums are accumulated in different orders, so the means agree
    // to rounding, not bit-exactly.
    EXPECT_NEAR(merged.mean(), combined.mean(),
                combined.mean() * 1e-12);
    EXPECT_DOUBLE_EQ(merged.min(), combined.min());
    EXPECT_DOUBLE_EQ(merged.max(), combined.max());
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_DOUBLE_EQ(merged.percentile(p), combined.percentile(p))
            << "p" << p;
}

TEST(Histogram, MergeWithEmptySides)
{
    Histogram a, b;
    a.add(3.0);
    a.merge(b); // empty rhs: no-op
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);

    Histogram c;
    c.merge(a); // empty lhs adopts rhs
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.percentile(50.0), 3.0);
}

TEST(Histogram, ZeroAndNegativeSamplesLandInUnderflowBucket)
{
    Histogram h;
    h.add(0.0);
    h.add(-5.0);
    h.add(10.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    EXPECT_DOUBLE_EQ(h.max(), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), -5.0);
}

TEST(StatSet, SetGetIncHas)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    s.set("x", 3.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
    s.inc("x");
    s.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(s.get("x"), 6.5);
    s.inc("fresh", 4.0);
    EXPECT_DOUBLE_EQ(s.get("fresh"), 4.0);
}

TEST(StatSet, DumpContainsAllEntriesWithPrefix)
{
    StatSet s;
    s.set("alpha", 1.0);
    s.set("beta", 2.0);
    const std::string d = s.dump("ssd.");
    EXPECT_NE(d.find("ssd.alpha"), std::string::npos);
    EXPECT_NE(d.find("ssd.beta"), std::string::npos);
    EXPECT_EQ(s.all().size(), 2u);
}

} // namespace
} // namespace ssdrr::sim

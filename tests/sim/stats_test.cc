/**
 * @file
 * Tests for counters, accumulators, histograms and the stat registry.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

namespace ssdrr::sim {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsAllZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    // Population variance of this classic dataset is exactly 4.
    EXPECT_NEAR(a.variance(), 4.0, 1e-12);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, HandlesNegativeValues)
{
    Accumulator a;
    a.add(-5.0);
    a.add(5.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_NEAR(a.variance(), 25.0, 1e-12);
}

TEST(Accumulator, WelfordIsNumericallyStable)
{
    // Large offset + small variance breaks naive sum-of-squares.
    Accumulator a;
    const double base = 1e9;
    for (int i = 0; i < 1000; ++i)
        a.add(base + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(a.variance(), 1.0, 1e-6);
}

TEST(Accumulator, ResetClearsState)
{
    Accumulator a;
    a.add(3.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    a.add(7.0);
    EXPECT_DOUBLE_EQ(a.mean(), 7.0);
    EXPECT_DOUBLE_EQ(a.min(), 7.0);
}

TEST(Histogram, PercentilesOfKnownData)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    const double p50 = h.percentile(50.0);
    EXPECT_GE(p50, 50.0);
    EXPECT_LE(p50, 51.0);
    const double p99 = h.percentile(99.0);
    EXPECT_GE(p99, 99.0);
    EXPECT_LE(p99, 100.0);
}

TEST(Histogram, UnsortedInsertStillSortsLazily)
{
    Histogram h;
    for (double v : {5.0, 1.0, 4.0, 2.0, 3.0})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
    // Adding after a percentile query must still be seen.
    h.add(0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
}

TEST(Histogram, ResetEmpties)
{
    Histogram h;
    h.add(1.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(StatSet, SetGetIncHas)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    s.set("x", 3.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
    s.inc("x");
    s.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(s.get("x"), 6.5);
    s.inc("fresh", 4.0);
    EXPECT_DOUBLE_EQ(s.get("fresh"), 4.0);
}

TEST(StatSet, DumpContainsAllEntriesWithPrefix)
{
    StatSet s;
    s.set("alpha", 1.0);
    s.set("beta", 2.0);
    const std::string d = s.dump("ssd.");
    EXPECT_NE(d.find("ssd.alpha"), std::string::npos);
    EXPECT_NE(d.find("ssd.beta"), std::string::npos);
    EXPECT_EQ(s.all().size(), 2u);
}

} // namespace
} // namespace ssdrr::sim

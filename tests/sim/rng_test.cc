/**
 * @file
 * Tests for the deterministic RNG, hash streams and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "sim/rng.hh"

namespace ssdrr::sim {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedDifferentSequence)
{
    Rng a(42), b(43);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedStillWorks)
{
    Rng r(0);
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 64; ++i)
        vals.insert(r.next());
    EXPECT_GT(vals.size(), 60u) << "degenerate state produces repeats";
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng r(11);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 7000; ++i)
        ++counts[r.uniformInt(7)];
    ASSERT_EQ(counts.size(), 7u);
    for (const auto &[k, c] : counts) {
        EXPECT_LT(k, 7u);
        EXPECT_GT(c, 800) << "residue " << k << " underrepresented";
    }
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal(10.0, 2.0);
        sum += x;
        sq += (x - 10.0) * (x - 10.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(Rng, LogNormalIsPositiveWithUnitMedian)
{
    Rng r(17);
    std::vector<double> xs;
    for (int i = 0; i < 10001; ++i) {
        const double x = r.logNormal(0.0, 0.25);
        ASSERT_GT(x, 0.0);
        xs.push_back(x);
    }
    std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
    EXPECT_NEAR(xs[5000], 1.0, 0.03) << "median of exp(N(0,s)) is 1";
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng r(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(0.5);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r(23);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.25));
    // E[geometric(p), failures-before-success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng r(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(29);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(HashStream, DeterministicAndCoordinateSensitive)
{
    const std::uint64_t h = hashStream(1, 2, 3, 4, 5);
    EXPECT_EQ(h, hashStream(1, 2, 3, 4, 5));
    EXPECT_NE(h, hashStream(2, 2, 3, 4, 5));
    EXPECT_NE(h, hashStream(1, 3, 3, 4, 5));
    EXPECT_NE(h, hashStream(1, 2, 4, 4, 5));
    EXPECT_NE(h, hashStream(1, 2, 3, 5, 5));
    EXPECT_NE(h, hashStream(1, 2, 3, 4, 6));
}

TEST(HashStream, SwappedCoordinatesDiffer)
{
    // (a, b) and (b, a) must hash differently: chip/block/page
    // coordinates are positional.
    EXPECT_NE(hashStream(0, 7, 9), hashStream(0, 9, 7));
}

TEST(HashStream, DerivedStreamsAreIndependent)
{
    Rng a(hashStream(99, 0));
    Rng b(hashStream(99, 1));
    double corr = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        corr += (a.uniform() - 0.5) * (b.uniform() - 0.5);
    EXPECT_NEAR(corr / n, 0.0, 0.01);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    Rng r(31);
    ZipfGenerator z(10, 0.0);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[z(r)];
    ASSERT_EQ(counts.size(), 10u);
    for (const auto &[k, c] : counts)
        EXPECT_NEAR(static_cast<double>(c) / 50000.0, 0.1, 0.02)
            << "rank " << k;
}

TEST(Zipf, SamplesStayInRange)
{
    Rng r(37);
    ZipfGenerator z(100, 0.9);
    for (int i = 0; i < 20000; ++i)
        ASSERT_LT(z(r), 100u);
}

TEST(Zipf, RankZeroIsHottest)
{
    Rng r(41);
    ZipfGenerator z(1000, 0.9);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[z(r)];
    int max_count = 0;
    std::uint64_t max_rank = 0;
    for (const auto &[k, c] : counts) {
        if (c > max_count) {
            max_count = c;
            max_rank = k;
        }
    }
    EXPECT_EQ(max_rank, 0u);
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[500] - 5);
}

/** Property sweep: higher theta concentrates more mass on rank 0. */
class ZipfSkewSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkewSweep, MassOnRankZeroGrowsWithTheta)
{
    const double theta = GetParam();
    Rng r(43);
    ZipfGenerator z(500, theta);
    int zero = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        zero += z(r) == 0 ? 1 : 0;
    const double p0 = static_cast<double>(zero) / n;

    Rng r2(43);
    ZipfGenerator z2(500, theta / 2.0);
    int zero2 = 0;
    for (int i = 0; i < n; ++i)
        zero2 += z2(r2) == 0 ? 1 : 0;
    const double p0_half = static_cast<double>(zero2) / n;

    EXPECT_GT(p0, p0_half)
        << "theta " << theta << " should be hotter than " << theta / 2;
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSkewSweep,
                         ::testing::Values(0.4, 0.6, 0.8, 0.9, 0.99));

} // namespace
} // namespace ssdrr::sim

/**
 * @file
 * sim/json unit tests: parse/dump round-trips, escape handling,
 * ordered objects, and actionable parse errors with line:column
 * positions (scenario files rely on these messages).
 */

#include <gtest/gtest.h>

#include "sim/json.hh"

namespace ssdrr::sim::json {
namespace {

Value
parseOk(const std::string &text)
{
    std::string err;
    Value v = parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return v;
}

std::string
parseErr(const std::string &text)
{
    std::string err;
    (void)parse(text, &err);
    EXPECT_FALSE(err.empty()) << "expected a parse error for: "
                              << text;
    return err;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_EQ(parseOk("true").asBool(), true);
    EXPECT_EQ(parseOk("false").asBool(), false);
    EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-1.5e3").asNumber(), -1500.0);
    EXPECT_EQ(parseOk("\"hi\\n\\\"there\\\"\"").asString(),
              "hi\n\"there\"");
}

TEST(Json, ParsesNestedStructures)
{
    const Value v = parseOk(R"({
        "a": [1, 2, {"b": true}],
        "c": {"d": null}
    })");
    ASSERT_TRUE(v.isObject());
    const Value *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->elements().size(), 3u);
    EXPECT_DOUBLE_EQ(a->elements()[0].asNumber(), 1.0);
    EXPECT_TRUE(a->elements()[2].find("b")->asBool());
    EXPECT_TRUE(v.find("c")->find("d")->isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    const Value v = parseOk(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, DumpParsesBackIdentically)
{
    Value v = Value::object();
    v.set("name", Value("tenant \"a\"\n"));
    v.set("count", Value(std::uint64_t{123}));
    v.set("rate", Value(0.1)); // not exactly representable
    Value arr = Value::array();
    arr.push(Value(true)).push(Value()).push(Value(-7.25));
    v.set("list", std::move(arr));

    for (int indent : {0, 2, 4}) {
        const Value back = parseOk(v.dump(indent));
        EXPECT_EQ(back, v) << "indent " << indent;
    }
}

TEST(Json, IntegralNumbersPrintWithoutDecimalPoint)
{
    Value v = Value::array();
    v.push(Value(std::uint64_t{1000000}));
    v.push(Value(2.5));
    EXPECT_EQ(v.dump(0), "[1000000, 2.5]");
}

TEST(Json, ErrorsCarryLineAndColumn)
{
    EXPECT_NE(parseErr("{\n  \"a\": 1,\n  bad\n}").find("line 3"),
              std::string::npos);
    EXPECT_NE(parseErr("[1, 2").find("unterminated array"),
              std::string::npos);
    EXPECT_NE(parseErr("\"open").find("unterminated string"),
              std::string::npos);
    EXPECT_NE(parseErr("{\"a\": 1 \"b\": 2}").find("expected ','"),
              std::string::npos);
    EXPECT_NE(parseErr("{} trailing").find("trailing"),
              std::string::npos);
}

TEST(Json, PathologicalNestingFailsInsteadOfOverflowing)
{
    // 100k unclosed '[' must produce a depth error, not a stack
    // overflow.
    const std::string deep(100000, '[');
    EXPECT_NE(parseErr(deep).find("nesting deeper than"),
              std::string::npos);
    // Reasonable nesting still parses.
    std::string ok;
    for (int i = 0; i < 100; ++i)
        ok += '[';
    ok += "1";
    for (int i = 0; i < 100; ++i)
        ok += ']';
    EXPECT_TRUE(parseOk(ok).isArray());
}

TEST(Json, DuplicateKeysAreRejected)
{
    const std::string err = parseErr(R"({"a": 1, "a": 2})");
    EXPECT_NE(err.find("duplicate key \"a\""), std::string::npos)
        << err;
}

} // namespace
} // namespace ssdrr::sim::json

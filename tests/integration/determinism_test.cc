/**
 * @file
 * Determinism regression: the overhauled kernel (slot-table event
 * queue, SBO callbacks, profile cache, lazy preconditioning,
 * bucketed histograms) must keep whole-simulation results
 * bit-reproducible — two runs of the same seed produce identical
 * RunStats, including every latency percentile, and disabling the
 * profile cache must not change a single field.
 */

#include <gtest/gtest.h>

#include "host/scenario.hh"
#include "ssd/config.hh"
#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr {
namespace {

void
expectIdentical(const ssd::RunStats &a, const ssd::RunStats &b)
{
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.retrySamples, b.retrySamples);
    EXPECT_EQ(a.suspensions, b.suspensions);
    EXPECT_EQ(a.gcCollections, b.gcCollections);
    EXPECT_EQ(a.timingFallbacks, b.timingFallbacks);
    EXPECT_EQ(a.readFailures, b.readFailures);
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_DOUBLE_EQ(a.avgRetrySteps, b.avgRetrySteps);
    EXPECT_DOUBLE_EQ(a.avgResponseUs, b.avgResponseUs);
    EXPECT_DOUBLE_EQ(a.avgReadResponseUs, b.avgReadResponseUs);
    EXPECT_DOUBLE_EQ(a.avgWriteResponseUs, b.avgWriteResponseUs);
    EXPECT_DOUBLE_EQ(a.p99ResponseUs, b.p99ResponseUs);
    EXPECT_DOUBLE_EQ(a.maxResponseUs, b.maxResponseUs);
    EXPECT_DOUBLE_EQ(a.p50ReadResponseUs, b.p50ReadResponseUs);
    EXPECT_DOUBLE_EQ(a.p99ReadResponseUs, b.p99ReadResponseUs);
    EXPECT_DOUBLE_EQ(a.p999ReadResponseUs, b.p999ReadResponseUs);
    EXPECT_DOUBLE_EQ(a.simulatedMs, b.simulatedMs);
    EXPECT_DOUBLE_EQ(a.channelUtilization, b.channelUtilization);
    EXPECT_DOUBLE_EQ(a.eccUtilization, b.eccUtilization);
}

ssd::RunStats
replayOnce(std::size_t cache_slots)
{
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 6.0;
    cfg.profileCacheSlots = cache_slots;
    workload::SyntheticSpec spec = workload::findWorkload("usr_1");
    const workload::Trace trace = workload::generateSynthetic(
        spec, cfg.logicalPages(), 600, 77);
    ssd::Ssd ssd(cfg, core::Mechanism::PnAR2);
    return ssd.replay(trace);
}

TEST(Determinism, SingleSsdReplayIsBitReproducible)
{
    const ssd::RunStats a = replayOnce(ssd::Config().profileCacheSlots);
    const ssd::RunStats b = replayOnce(ssd::Config().profileCacheSlots);
    expectIdentical(a, b);
    EXPECT_GT(a.reads, 0u);
    EXPECT_GT(a.p999ReadResponseUs, 0.0);
}

TEST(Determinism, ProfileCacheDoesNotChangeResults)
{
    const ssd::RunStats cached = replayOnce(1 << 14);
    const ssd::RunStats uncached = replayOnce(0);
    expectIdentical(cached, uncached);
}

TEST(Determinism, MultiTenantScenarioIsBitReproducible)
{
    auto run = [] {
        host::ScenarioConfig sc;
        sc.ssd = ssd::Config::small();
        sc.ssd.basePeKilo = 1.0;
        sc.ssd.baseRetentionMonths = 6.0;
        sc.mech = core::Mechanism::PnAR2;
        sc.drives = 2;
        sc.host.queueDepth = 16;
        for (std::uint32_t t = 0; t < 3; ++t) {
            host::TenantSpec ts;
            ts.workload = "usr_1";
            ts.name = "t" + std::to_string(t);
            ts.requests = 300;
            ts.qdLimit = 8;
            sc.tenants.push_back(ts);
        }
        return host::runScenario(sc);
    };

    const host::ScenarioResult a = run();
    const host::ScenarioResult b = run();
    expectIdentical(a.array, b.array);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t t = 0; t < a.tenants.size(); ++t) {
        EXPECT_EQ(a.tenants[t].completed, b.tenants[t].completed);
        EXPECT_DOUBLE_EQ(a.tenants[t].avgUs, b.tenants[t].avgUs);
        EXPECT_DOUBLE_EQ(a.tenants[t].p50Us, b.tenants[t].p50Us);
        EXPECT_DOUBLE_EQ(a.tenants[t].p99Us, b.tenants[t].p99Us);
        EXPECT_DOUBLE_EQ(a.tenants[t].p999Us, b.tenants[t].p999Us);
    }
    EXPECT_EQ(a.fetchedPerQueue, b.fetchedPerQueue);
}

TEST(HistogramMergeEquivalence, ArrayStatsMatchMergedPerDrive)
{
    // Single-page requests: a parent request's end-to-end latency
    // equals its (only) per-drive subrequest latency, so the merge
    // of the member drives' read histograms must reproduce the
    // array-level read percentiles exactly.
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 3.0;
    host::SsdArray array(cfg, core::Mechanism::Baseline, 2);
    array.precondition();

    std::uint64_t rng = 4242;
    for (std::uint64_t id = 1; id <= 400; ++id) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        ssd::HostRequest req;
        req.id = id;
        req.arrival = array.eventQueue().now();
        req.lpn = rng % array.logicalPages();
        req.pages = 1;
        req.isRead = true;
        array.submit(req);
        if (id % 16 == 0)
            array.drain();
    }
    array.drain();

    sim::Histogram merged = array.drive(0).readResponseTimes();
    merged.merge(array.drive(1).readResponseTimes());

    const ssd::RunStats st = array.stats();
    EXPECT_EQ(merged.count(), st.reads);
    for (double p : {50.0, 99.0, 99.9}) {
        EXPECT_DOUBLE_EQ(merged.percentile(p),
                         array.readResponseTimes().percentile(p))
            << "p" << p;
    }
    EXPECT_DOUBLE_EQ(st.p50ReadResponseUs, merged.percentile(50.0));
    EXPECT_DOUBLE_EQ(st.p99ReadResponseUs, merged.percentile(99.0));
    EXPECT_DOUBLE_EQ(st.p999ReadResponseUs, merged.percentile(99.9));
}

} // namespace
} // namespace ssdrr

/**
 * @file
 * Soak test: a long mixed run with GC, refresh and an aggressive
 * mechanism all active at once; everything the shorter tests check
 * must still hold after sustained churn.
 */

#include <gtest/gtest.h>

#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr {
namespace {

TEST(Soak, SustainedMixedLoadWithGcAndRefresh)
{
    ssd::Config cfg = ssd::Config::small();
    cfg.blocksPerPlane = 32;
    cfg.userFraction = 0.72;
    cfg.gcThreshold = 4;
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 9.0;
    cfg.refreshThresholdMonths = 6.0;

    workload::SyntheticSpec spec = workload::findWorkload("hm_0");
    spec.footprintFraction = 0.35; // concentrated -> heavy overwrite
    const workload::Trace trace = workload::generateSynthetic(
        spec, cfg.logicalPages(), 4000, 77);

    ssd::Ssd ssd(cfg, core::Mechanism::PSO_PnAR2);
    const ssd::RunStats st = ssd.replay(trace);

    // Conservation and coherence after ~4k requests of churn.
    EXPECT_EQ(st.reads + st.writes, trace.size());
    EXPECT_GT(st.refreshes, 0u) << "cold reads trigger read-reclaim";
    EXPECT_EQ(st.readFailures, 0u);
    EXPECT_GT(st.avgResponseUs, 0.0);
    EXPECT_GE(st.maxResponseUs, st.p99ResponseUs);

    // FTL still bijective over the whole logical space.
    const ftl::AddressLayout layout = cfg.layout();
    std::set<std::uint64_t> seen;
    for (ftl::Lpn lpn = 0; lpn < ssd.ftl().logicalPages(); ++lpn) {
        const ftl::Ppn ppn = ssd.ftl().translate(lpn);
        ASSERT_TRUE(seen.insert(layout.flatPage(ppn)).second) << lpn;
        ASSERT_TRUE(ssd.ftl().blocks().isValid(ppn)) << lpn;
    }

    // Every plane kept its GC floor.
    for (std::uint32_t pl = 0; pl < layout.totalPlanes(); ++pl)
        EXPECT_GE(ssd.ftl().blocks().freeBlocks(pl), 1u) << pl;

    // The event count is plausible: every page op costs at least one
    // event, and nothing leaked unbounded work.
    EXPECT_GT(ssd.eventQueue().executedEvents(), trace.size());
    EXPECT_LT(ssd.eventQueue().executedEvents(), 40u * trace.size());
}

TEST(Soak, RepeatedReplayOfSameSsdObjectIsRejectedGracefully)
{
    // replay() preconditions on first use; a second replay on the
    // same (already preconditioned, already written) SSD simply
    // continues from the current state rather than resetting.
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 0.5;
    cfg.baseRetentionMonths = 3.0;
    const workload::Trace trace = workload::generateSynthetic(
        workload::findWorkload("prn_1"), cfg.logicalPages(), 200, 3);

    ssd::Ssd ssd(cfg, core::Mechanism::PnAR2);
    const ssd::RunStats first = ssd.replay(trace);
    EXPECT_EQ(first.reads + first.writes, trace.size());
    // Cumulative stats after a second replay cover both runs.
    const ssd::RunStats second = ssd.replay(trace);
    EXPECT_EQ(second.reads + second.writes, 2 * trace.size());
}

} // namespace
} // namespace ssdrr

/**
 * @file
 * Cross-thread determinism: the sharded per-drive engine
 * (host::SsdArray with hostLink > 0, sim::ParallelExecutor) must
 * produce bit-identical results for every worker count — the same
 * RunStats (including p50/p99/p99.9), the same per-tenant latency
 * distributions, and the same arbitration accounting with threads=4
 * as with threads=1. This is the acceptance oracle for the parallel
 * engine: any causality leak across a window boundary, unordered
 * mailbox delivery, or shared mutable state between drives shows up
 * here as a field mismatch.
 */

#include <gtest/gtest.h>

#include "host/scenario_spec.hh"

namespace ssdrr {
namespace {

void
expectIdenticalDegraded(const ssd::RunStats &a, const ssd::RunStats &b)
{
    EXPECT_EQ(a.degradedReads, b.degradedReads);
    EXPECT_EQ(a.reconstructionReads, b.reconstructionReads);
    EXPECT_EQ(a.parityWrites, b.parityWrites);
    EXPECT_EQ(a.avgDegradedReadUs, b.avgDegradedReadUs);
    EXPECT_EQ(a.p50DegradedReadUs, b.p50DegradedReadUs);
    EXPECT_EQ(a.p99DegradedReadUs, b.p99DegradedReadUs);
    EXPECT_EQ(a.p999DegradedReadUs, b.p999DegradedReadUs);
}

void
expectIdenticalFilterStats(const ssd::RunStats &a,
                           const ssd::RunStats &b)
{
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.cacheEvictions, b.cacheEvictions);
    EXPECT_EQ(a.prefetchIssued, b.prefetchIssued);
    EXPECT_EQ(a.prefetchUseful, b.prefetchUseful);
    EXPECT_EQ(a.splitRequests, b.splitRequests);
    EXPECT_EQ(a.coalescedRequests, b.coalescedRequests);
    EXPECT_EQ(a.delayedRequests, b.delayedRequests);
    EXPECT_EQ(a.throttledRequests, b.throttledRequests);
    EXPECT_EQ(a.hostReads, b.hostReads);
    EXPECT_EQ(a.avgHostReadUs, b.avgHostReadUs);
    EXPECT_EQ(a.p50HostReadUs, b.p50HostReadUs);
    EXPECT_EQ(a.p99HostReadUs, b.p99HostReadUs);
    EXPECT_EQ(a.p999HostReadUs, b.p999HostReadUs);
}

void
expectIdenticalFaultStats(const ssd::RunStats &a,
                          const ssd::RunStats &b)
{
    EXPECT_EQ(a.hostTimeouts, b.hostTimeouts);
    EXPECT_EQ(a.hostRetries, b.hostRetries);
    EXPECT_EQ(a.hostFailovers, b.hostFailovers);
    EXPECT_EQ(a.ueccReads, b.ueccReads);
    EXPECT_EQ(a.failedRequests, b.failedRequests);
    EXPECT_EQ(a.rebuildReads, b.rebuildReads);
    EXPECT_EQ(a.rebuildProgress, b.rebuildProgress);
    EXPECT_EQ(a.timeToRebuildMs, b.timeToRebuildMs);
}

void
expectIdenticalFabricStats(const ssd::RunStats &a,
                           const ssd::RunStats &b)
{
    EXPECT_EQ(a.avgFabricWaitUs, b.avgFabricWaitUs);
    ASSERT_EQ(a.fabricLinks.size(), b.fabricLinks.size());
    for (std::size_t l = 0; l < a.fabricLinks.size(); ++l) {
        SCOPED_TRACE("link " + a.fabricLinks[l].link);
        EXPECT_EQ(a.fabricLinks[l].link, b.fabricLinks[l].link);
        EXPECT_EQ(a.fabricLinks[l].messages,
                  b.fabricLinks[l].messages);
        EXPECT_EQ(a.fabricLinks[l].bytesCarried,
                  b.fabricLinks[l].bytesCarried);
        EXPECT_EQ(a.fabricLinks[l].busyUs, b.fabricLinks[l].busyUs);
        EXPECT_EQ(a.fabricLinks[l].waitUs, b.fabricLinks[l].waitUs);
        EXPECT_EQ(a.fabricLinks[l].maxQueueDepth,
                  b.fabricLinks[l].maxQueueDepth);
    }
}

void
expectIdenticalArray(const ssd::RunStats &a, const ssd::RunStats &b)
{
    expectIdenticalDegraded(a, b);
    expectIdenticalFilterStats(a, b);
    expectIdenticalFaultStats(a, b);
    expectIdenticalFabricStats(a, b);
    // EXPECT_EQ on doubles is exact comparison, deliberately: a
    // cross-domain ordering leak would first show up as a 1-ULP
    // drift in a floating-point accumulation, which a tolerant
    // comparison (EXPECT_DOUBLE_EQ = 4 ULPs) would wave through.

    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.retrySamples, b.retrySamples);
    EXPECT_EQ(a.suspensions, b.suspensions);
    EXPECT_EQ(a.gcCollections, b.gcCollections);
    EXPECT_EQ(a.timingFallbacks, b.timingFallbacks);
    EXPECT_EQ(a.readFailures, b.readFailures);
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.profileCacheHits, b.profileCacheHits);
    EXPECT_EQ(a.profileCacheMisses, b.profileCacheMisses);
    EXPECT_EQ(a.avgRetrySteps, b.avgRetrySteps);
    EXPECT_EQ(a.avgResponseUs, b.avgResponseUs);
    EXPECT_EQ(a.avgReadResponseUs, b.avgReadResponseUs);
    EXPECT_EQ(a.avgWriteResponseUs, b.avgWriteResponseUs);
    EXPECT_EQ(a.p99ResponseUs, b.p99ResponseUs);
    EXPECT_EQ(a.maxResponseUs, b.maxResponseUs);
    EXPECT_EQ(a.p50ReadResponseUs, b.p50ReadResponseUs);
    EXPECT_EQ(a.p99ReadResponseUs, b.p99ReadResponseUs);
    EXPECT_EQ(a.p999ReadResponseUs, b.p999ReadResponseUs);
    EXPECT_EQ(a.simulatedMs, b.simulatedMs);
    EXPECT_EQ(a.channelUtilization, b.channelUtilization);
    EXPECT_EQ(a.eccUtilization, b.eccUtilization);
}

void
expectIdenticalTenant(const host::TenantStats &a,
                      const host::TenantStats &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.avgUs, b.avgUs);
    EXPECT_EQ(a.p50Us, b.p50Us);
    EXPECT_EQ(a.p99Us, b.p99Us);
    EXPECT_EQ(a.p999Us, b.p999Us);
    EXPECT_EQ(a.maxUs, b.maxUs);
    EXPECT_EQ(a.readP50Us, b.readP50Us);
    EXPECT_EQ(a.readP99Us, b.readP99Us);
    EXPECT_EQ(a.readP999Us, b.readP999Us);
    EXPECT_EQ(a.achievedIops, b.achievedIops);
}

void
expectIdenticalResult(const host::ScenarioResult &a,
                      const host::ScenarioResult &b)
{
    expectIdenticalArray(a.array, b.array);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t t = 0; t < a.tenants.size(); ++t) {
        SCOPED_TRACE("tenant " + a.tenants[t].name);
        expectIdenticalTenant(a.tenants[t], b.tenants[t]);
    }
    EXPECT_EQ(a.fetchedPerQueue, b.fetchedPerQueue);
}

/** 4-drive, 4-tenant mixed-QoS scenario on the sharded engine. */
host::ScenarioSpec
fourDriveSpec()
{
    return host::ScenarioBuilder()
        .name("parallel-determinism")
        .geometry("small")
        .pec(1.0)
        .retention(6.0)
        .seed(99)
        .drives(4)
        .hostLinkUs(10.0)
        .queueDepth(16)
        .arbitration("wrr")
        .mechanism(core::Mechanism::PnAR2)
        .tenant("usr", "usr_1", 250)
        .qdLimit(16)
        .weight(1)
        .tenant("kv", "YCSB-C", 250)
        .qdLimit(8)
        .weight(2)
        .tenant("log", "stg_0", 250)
        .qdLimit(8)
        .weight(1)
        .rateIops(20000)
        .burst(8)
        .tenant("scan", "usr_1", 250)
        .qdLimit(4)
        .weight(3)
        .build();
}

host::ScenarioResult
runWithThreads(std::uint32_t threads, bool batch_mailbox = true)
{
    host::ScenarioConfig cfg =
        fourDriveSpec().toConfig(core::Mechanism::PnAR2);
    cfg.threads = threads;
    cfg.batchMailbox = batch_mailbox;
    return host::runScenario(cfg);
}

TEST(ParallelDeterminism, FourThreadsMatchOneBitForBit)
{
    const host::ScenarioResult one = runWithThreads(1);
    const host::ScenarioResult four = runWithThreads(4);
    EXPECT_GT(one.array.reads, 0u);
    EXPECT_GT(one.array.retrySamples, 0u);
    expectIdenticalResult(one, four);
}

TEST(ParallelDeterminism, TwoThreadsMatchOneBitForBit)
{
    expectIdenticalResult(runWithThreads(1), runWithThreads(2));
}

TEST(ParallelDeterminism, OversubscribedThreadsMatch)
{
    // More workers than drives+host domains: the clamp must not
    // change anything.
    expectIdenticalResult(runWithThreads(1), runWithThreads(16));
}

TEST(ParallelDeterminism, ShardedEngineIsReproducible)
{
    expectIdenticalResult(runWithThreads(4), runWithThreads(4));
}

/**
 * RAID-5 with a failed drive on the sharded engine: every degraded
 * read fans out to the three survivors and joins across the window
 * barrier, every write two-phases through parity pre-reads — the
 * completion bookkeeping with the most cross-domain traffic the
 * array can generate. Threads 1/2/4 must agree bit for bit,
 * including the degraded-read histogram.
 */
host::ScenarioResult
runRaid5Degraded(std::uint32_t threads)
{
    const host::ScenarioSpec spec =
        host::ScenarioBuilder()
            .name("raid5-degraded-determinism")
            .geometry("small")
            .pec(2.0)
            .retention(12.0)
            .seed(31)
            .drives(4)
            .raid("raid5")
            .stripeUnitPages(4)
            .failedDrives({1})
            .hostLinkUs(10.0)
            .transferUsPerKb(0.2)
            .queueDepth(16)
            .mechanism(core::Mechanism::PnAR2)
            .tenant("reader", "usr_1", 200)
            .qdLimit(16)
            .tenant("mixed", "stg_0", 150)
            .qdLimit(8)
            .build();
    host::ScenarioConfig cfg =
        spec.toConfig(core::Mechanism::PnAR2);
    cfg.threads = threads;
    return host::runScenario(cfg);
}

TEST(ParallelDeterminism, Raid5DegradedMatchesAcrossThreads)
{
    const host::ScenarioResult one = runRaid5Degraded(1);
    // The scenario must actually exercise reconstruction and parity
    // maintenance, or the equality below proves nothing.
    EXPECT_GT(one.array.degradedReads, 0u);
    EXPECT_GT(one.array.reconstructionReads, 0u);
    EXPECT_GT(one.array.parityWrites, 0u);
    const host::ScenarioResult two = runRaid5Degraded(2);
    const host::ScenarioResult four = runRaid5Degraded(4);
    {
        SCOPED_TRACE("threads 1 vs 2");
        expectIdenticalResult(one, two);
    }
    {
        SCOPED_TRACE("threads 1 vs 4");
        expectIdenticalResult(one, four);
    }
}

/**
 * Full filter chain on the sharded engine: readahead feeding a DRAM
 * cache, plus a delay and a split stage — cache hits complete on the
 * host domain without ever crossing into a drive, prefetches are
 * chain-internal, split pieces rejoin across window boundaries. The
 * chain lives entirely on the host domain, so every counter and the
 * host-surface histogram must be bit-identical for any worker count.
 */
host::ScenarioResult
runFilterChain(std::uint32_t threads)
{
    host::ScenarioBuilder b;
    b.name("filter-chain-determinism")
        .geometry("small")
        .pec(1.0)
        .retention(6.0)
        .seed(23)
        .drives(4)
        .hostLinkUs(10.0)
        .queueDepth(16)
        .mechanism(core::Mechanism::PnAR2);
    b.readahead(8);
    host::filter::FilterSpec cache;
    cache.type = "cache";
    cache.sizeBytes = 4ull << 20;
    cache.admission = "all";
    cache.hitLatencyUs = 2.0;
    b.addFilter(cache);
    host::filter::FilterSpec delay;
    delay.type = "delay";
    delay.delayUs = 3.0;
    delay.applies = "writes";
    b.addFilter(delay);
    host::filter::FilterSpec split;
    split.type = "split";
    split.maxPages = 2;
    b.addFilter(split);
    b.tenant("scan", "seq_scan", 250).qdLimit(16);
    b.tenant("kv", "YCSB-C", 250).qdLimit(8);
    b.tenant("log", "stg_0", 200).qdLimit(8);
    host::ScenarioConfig cfg =
        b.build().toConfig(core::Mechanism::PnAR2);
    cfg.threads = threads;
    return host::runScenario(cfg);
}

TEST(ParallelDeterminism, FilterChainMatchesAcrossThreads)
{
    const host::ScenarioResult one = runFilterChain(1);
    // The scenario must actually exercise every filter, or the
    // equalities below prove nothing.
    EXPECT_GT(one.array.cacheHits, 0u);
    EXPECT_GT(one.array.prefetchIssued, 0u);
    EXPECT_GT(one.array.prefetchUseful, 0u);
    EXPECT_GT(one.array.splitRequests, 0u);
    EXPECT_GT(one.array.delayedRequests, 0u);
    EXPECT_GT(one.array.hostReads, 0u);
    const host::ScenarioResult two = runFilterChain(2);
    const host::ScenarioResult four = runFilterChain(4);
    {
        SCOPED_TRACE("threads 1 vs 2");
        expectIdenticalResult(one, two);
    }
    {
        SCOPED_TRACE("threads 1 vs 4");
        expectIdenticalResult(one, four);
    }
}

/**
 * Fault timeline on the sharded engine: a fail-slow window, seeded
 * UECC reads, and a mid-run fail-stop whose detection triggers a
 * rebuild-to-spare — timeouts, retries with backoff, failover
 * reconstruction joins, and the rebuild agent's background queue
 * pair all at once. All fault decisions live on the host domain, so
 * threads 1/2/4 must agree bit for bit, including every new
 * robustness counter.
 */
host::ScenarioResult
runFaultTimeline(std::uint32_t threads)
{
    const host::ScenarioSpec spec =
        host::ScenarioBuilder()
            .name("fault-timeline-determinism")
            .geometry("small")
            .pec(1.0)
            .retention(6.0)
            .seed(23)
            .drives(4)
            .raid("raid5")
            .stripeUnitPages(4)
            .hostLinkUs(10.0)
            .transferUsPerKb(0.2)
            .queueDepth(16)
            .timeoutUs(2500.0)
            .retryMax(2)
            .retryBackoffUs(100.0)
            .failSlow(2, 500.0, 6000.0, 3.0)
            .ueccFault(1, 0.0, 0.0, 0.05)
            .failStop(0, 4000.0, /*rebuild=*/true,
                      /*rebuild_rows=*/48)
            .mechanism(core::Mechanism::PnAR2)
            .tenant("reader", "usr_1", 200)
            .qdLimit(16)
            .tenant("mixed", "stg_0", 150)
            .qdLimit(8)
            .build();
    host::ScenarioConfig cfg =
        spec.toConfig(core::Mechanism::PnAR2);
    cfg.threads = threads;
    return host::runScenario(cfg);
}

TEST(ParallelDeterminism, FaultTimelineMatchesAcrossThreads)
{
    const host::ScenarioResult one = runFaultTimeline(1);
    // The scenario must actually trip every robustness path, or the
    // equalities below prove nothing.
    EXPECT_GT(one.array.hostTimeouts, 0u);
    EXPECT_GT(one.array.hostRetries, 0u);
    EXPECT_GT(one.array.hostFailovers, 0u);
    EXPECT_GT(one.array.ueccReads, 0u);
    EXPECT_GT(one.array.rebuildReads, 0u);
    EXPECT_GT(one.array.degradedReads, 0u);
    const host::ScenarioResult two = runFaultTimeline(2);
    const host::ScenarioResult four = runFaultTimeline(4);
    {
        SCOPED_TRACE("threads 1 vs 2");
        expectIdenticalResult(one, two);
    }
    {
        SCOPED_TRACE("threads 1 vs 4");
        expectIdenticalResult(one, four);
    }
}

/**
 * Storage fabric on the sharded engine: every dispatch and completion
 * multi-hops through switch domains with per-link FIFO contention,
 * and the oversubscribed uplinks force queueing — the cross-domain
 * traffic pattern with the most intermediate state the array can
 * generate. Threads 1/2/4 must agree bit for bit, including every
 * per-link counter.
 */
host::ScenarioResult
runFabric(std::uint32_t threads, bool batch_mailbox = true)
{
    fabric::TopologySpec topo;
    topo.nodes = {{"host0", "host"}, {"tor0", "switch"},
                  {"tor1", "switch"}, {"bay0", "drive"},
                  {"bay1", "drive"},  {"bay2", "drive"},
                  {"bay3", "drive"}};
    topo.links = {{"host0", "tor0", 2.0, 0.4},
                  {"host0", "tor1", 2.0, 0.4},
                  {"tor0", "bay0", 1.0, 0.05},
                  {"tor0", "bay1", 1.0, 0.05},
                  {"tor1", "bay2", 1.0, 0.05},
                  {"tor1", "bay3", 1.0, 0.05}};
    topo.drives = {"bay0", "bay1", "bay2", "bay3"};
    const host::ScenarioSpec spec =
        host::ScenarioBuilder()
            .name("fabric-determinism")
            .geometry("small")
            .pec(1.0)
            .retention(6.0)
            .seed(31)
            .drives(4)
            .queueDepth(16)
            .arbitration("wrr")
            .mechanism(core::Mechanism::PnAR2)
            .tenant("kv", "YCSB-C", 200)
            .qdLimit(16)
            .weight(3)
            .tenant("log", "stg_0", 150)
            .qdLimit(8)
            .weight(1)
            .fabric(topo)
            .build();
    host::ScenarioConfig cfg = spec.toConfig(core::Mechanism::PnAR2);
    cfg.threads = threads;
    cfg.batchMailbox = batch_mailbox;
    return host::runScenario(cfg);
}

TEST(ParallelDeterminism, FabricScenarioMatchesAcrossThreads)
{
    const host::ScenarioResult one = runFabric(1);
    // The scenario must actually push traffic through the fabric —
    // and queue on the oversubscribed uplinks — or the equalities
    // below prove nothing.
    ASSERT_EQ(one.array.fabricLinks.size(), 6u);
    EXPECT_GT(one.array.fabricLinks[0].messages, 0u);
    EXPECT_GT(one.array.fabricLinks[0].bytesCarried, 0u);
    EXPECT_GT(one.array.fabricLinks[0].waitUs, 0.0);
    EXPECT_GT(one.array.avgFabricWaitUs, 0.0);
    const host::ScenarioResult two = runFabric(2);
    const host::ScenarioResult four = runFabric(4);
    {
        SCOPED_TRACE("threads 1 vs 2");
        expectIdenticalResult(one, two);
    }
    {
        SCOPED_TRACE("threads 1 vs 4");
        expectIdenticalResult(one, four);
    }
}

/** The tree preset behind the --fabric sugar must behave the same. */
TEST(ParallelDeterminism, FabricPresetMatchesAcrossThreads)
{
    auto run = [](std::uint32_t threads) {
        const host::ScenarioSpec spec =
            host::ScenarioBuilder()
                .geometry("small")
                .pec(1.0)
                .retention(6.0)
                .seed(7)
                .drives(4)
                .queueDepth(16)
                .mechanism(core::Mechanism::Baseline)
                .tenant("t", "usr_1", 200)
                .qdLimit(16)
                .fabricPreset("tree:2x2")
                .build();
        host::ScenarioConfig cfg =
            spec.toConfig(core::Mechanism::Baseline);
        cfg.threads = threads;
        return host::runScenario(cfg);
    };
    const host::ScenarioResult one = run(1);
    EXPECT_GT(one.array.fabricLinks.size(), 0u);
    expectIdenticalResult(one, run(4));
}

TEST(ParallelDeterminism, OpenLoopHorizonScenarioMatches)
{
    // Open-loop injection with a time horizon exercises
    // arrival-driven host events (not just completion-driven ones)
    // across window boundaries.
    auto run = [](std::uint32_t threads) {
        const host::ScenarioSpec spec =
            host::ScenarioBuilder()
                .geometry("small")
                .pec(1.0)
                .retention(6.0)
                .seed(7)
                .drives(4)
                .hostLinkUs(5.0)
                .queueDepth(16)
                .mechanism(core::Mechanism::Baseline)
                .tenant("steady", "YCSB-C", 150)
                .openLoop()
                .iops(4000.0)
                .horizonUs(80000.0)
                .tenant("bg", "stg_0", 150)
                .qdLimit(8)
                .build();
        host::ScenarioConfig cfg =
            spec.toConfig(core::Mechanism::Baseline);
        cfg.threads = threads;
        return host::runScenario(cfg);
    };
    expectIdenticalResult(run(1), run(4));
}

/**
 * Idle-window fast-forward and the parking handshake at scenario
 * scale: a single queue-depth-1 tenant leaves exactly one request in
 * flight, ping-ponging between the host domain and one drive, so
 * nearly every window has a lone active domain and fast-forwards
 * inline while the worker fleet stays parked. windowsRun and
 * windowsSkipped derive from queue state only and must be identical
 * at threads 1/2/4 — alongside the full simulation results — while
 * parks/spins are timing-dependent and deliberately unchecked. Under
 * the CI tsan job this doubles as the race probe for park/wake at
 * whole-scenario scale.
 */
host::ScenarioResult
runSparseQd1(std::uint32_t threads)
{
    const host::ScenarioSpec spec =
        host::ScenarioBuilder()
            .name("sparse-fastforward-determinism")
            .geometry("small")
            .pec(1.0)
            .retention(6.0)
            .seed(17)
            .drives(4)
            .hostLinkUs(10.0)
            .queueDepth(4)
            .mechanism(core::Mechanism::PnAR2)
            .tenant("lone", "usr_1", 200)
            .qdLimit(1)
            .build();
    host::ScenarioConfig cfg = spec.toConfig(core::Mechanism::PnAR2);
    cfg.threads = threads;
    return host::runScenario(cfg);
}

TEST(ParallelDeterminism, FastForwardCountersMatchAcrossThreads)
{
    const host::ScenarioResult one = runSparseQd1(1);
    EXPECT_GT(one.array.executorWindowsRun, 0u);
    // QD 1 means at most one domain has in-window work, so the
    // sparse path must actually engage or this test proves nothing.
    EXPECT_GT(one.array.executorWindowsSkipped, 0u);
    // Single-thread runs have no worker pool and must never park.
    EXPECT_EQ(one.array.executorParks, 0u);
    EXPECT_EQ(one.array.executorSpins, 0u);
    const host::ScenarioResult two = runSparseQd1(2);
    const host::ScenarioResult four = runSparseQd1(4);
    for (const host::ScenarioResult *r : {&two, &four}) {
        EXPECT_EQ(r->array.executorWindowsRun,
                  one.array.executorWindowsRun)
            << "windowsRun must be worker-count-invariant";
        EXPECT_EQ(r->array.executorWindowsSkipped,
                  one.array.executorWindowsSkipped)
            << "windowsSkipped must be worker-count-invariant";
    }
    {
        SCOPED_TRACE("threads 1 vs 2");
        expectIdenticalResult(one, two);
    }
    {
        SCOPED_TRACE("threads 1 vs 4");
        expectIdenticalResult(one, four);
    }
}

/**
 * Doorbell batching (coalescing same-window mailbox crossings that
 * share a receiver and delivery tick into one heap event) is an
 * engine optimization, not a model change: with batching on — the
 * default — every statistic including executedEvents must match the
 * unbatched event stream bit for bit, at every worker count. This is
 * the acceptance oracle for sim::ParallelExecutor's batched route().
 */
TEST(ParallelDeterminism, DoorbellBatchingParityAcrossThreads)
{
    for (std::uint32_t threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        expectIdenticalResult(
            runWithThreads(threads, /*batch_mailbox=*/false),
            runWithThreads(threads, /*batch_mailbox=*/true));
    }
}

/**
 * The fabric engine shares route() with the flat-link engine, so
 * batching applies to hop-by-hop switch traffic too — per-link
 * counters and queueing must be unaffected.
 */
TEST(ParallelDeterminism, DoorbellBatchingParityOnFabric)
{
    {
        SCOPED_TRACE("threads 1");
        expectIdenticalResult(runFabric(1, /*batch_mailbox=*/false),
                              runFabric(1, /*batch_mailbox=*/true));
    }
    {
        SCOPED_TRACE("threads 4");
        expectIdenticalResult(runFabric(4, /*batch_mailbox=*/false),
                              runFabric(4, /*batch_mailbox=*/true));
    }
}

} // namespace
} // namespace ssdrr

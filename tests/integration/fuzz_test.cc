/**
 * @file
 * Randomized full-stack invariant tests: arbitrary request
 * interleavings must preserve conservation (every submitted request
 * completes exactly once), FTL bijectivity, free-block floors and
 * statistics coherence, under every mechanism.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"
#include "ssd/ssd.hh"

namespace ssdrr {
namespace {

ssd::Config
fuzzConfig(std::uint64_t seed)
{
    ssd::Config c = ssd::Config::small();
    c.blocksPerPlane = 24;
    c.userFraction = 0.70;
    c.basePeKilo = 1.0;
    c.baseRetentionMonths = 6.0;
    c.seed = seed;
    return c;
}

/** One random session: mixed requests at random times and sizes. */
class SsdFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SsdFuzz, RandomTrafficPreservesInvariants)
{
    const std::uint64_t seed = GetParam();
    sim::Rng rng(seed);
    const ssd::Config cfg = fuzzConfig(seed);

    // Rotate mechanisms across seeds so the whole matrix gets
    // fuzzed over the instantiation.
    const core::Mechanism mechs[] = {
        core::Mechanism::Baseline,      core::Mechanism::PR2,
        core::Mechanism::AR2,           core::Mechanism::PnAR2,
        core::Mechanism::PSO_PnAR2,     core::Mechanism::Sentinel_PnAR2,
    };
    const core::Mechanism mech = mechs[seed % std::size(mechs)];

    ssd::Ssd ssd(cfg, mech);
    ssd.ftl().precondition();
    const std::uint64_t space = ssd.ftl().logicalPages();

    std::uint64_t submitted_reads = 0, submitted_writes = 0;
    sim::Tick t = 0;
    for (std::uint64_t id = 1; id <= 400; ++id) {
        ssd::HostRequest req;
        req.id = id;
        t += rng.uniformInt(sim::usec(400));
        req.arrival = t;
        req.pages = 1 + static_cast<std::uint32_t>(rng.uniformInt(6));
        req.lpn = rng.uniformInt(space - req.pages);
        req.isRead = rng.chance(0.6);
        (req.isRead ? submitted_reads : submitted_writes) += 1;
        ssd.eventQueue().schedule(
            req.arrival, [&ssd, req] { ssd.submit(req); });
    }
    ssd.drain();

    // Conservation: every request completed exactly once.
    const ssd::RunStats st = ssd.stats();
    EXPECT_EQ(st.reads, submitted_reads);
    EXPECT_EQ(st.writes, submitted_writes);
    EXPECT_EQ(ssd.responseTimes().count(),
              submitted_reads + submitted_writes);

    // Statistics coherence.
    EXPECT_GT(st.avgResponseUs, 0.0);
    EXPECT_GE(st.maxResponseUs, st.p99ResponseUs);
    EXPECT_GE(st.p99ResponseUs, 0.0);
    EXPECT_EQ(st.readFailures, 0u);

    // FTL bijectivity: every mapped LPN resolves to a distinct,
    // valid physical page owned by that LPN.
    std::set<std::uint64_t> seen;
    const ftl::AddressLayout layout = cfg.layout();
    for (ftl::Lpn lpn = 0; lpn < space; ++lpn) {
        const ftl::Ppn ppn = ssd.ftl().translate(lpn);
        EXPECT_TRUE(seen.insert(layout.flatPage(ppn)).second)
            << "two LPNs share physical page (lpn " << lpn << ")";
        EXPECT_TRUE(ssd.ftl().blocks().isValid(ppn)) << lpn;
        EXPECT_EQ(ssd.ftl().blocks().lpnOf(ppn), lpn);
    }

    // Free-block floors hold on every plane.
    for (std::uint32_t pl = 0; pl < layout.totalPlanes(); ++pl)
        EXPECT_GE(ssd.ftl().blocks().freeBlocks(pl), 1u) << "plane " << pl;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsdFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u, 11u, 12u));

TEST(SsdFuzzDeterminism, SameSeedSameResult)
{
    for (core::Mechanism mech :
         {core::Mechanism::PnAR2, core::Mechanism::PSO_PnAR2}) {
        double first = -1.0;
        std::uint64_t first_events = 0;
        for (int run = 0; run < 2; ++run) {
            sim::Rng rng(99);
            const ssd::Config cfg = fuzzConfig(99);
            ssd::Ssd ssd(cfg, mech);
            ssd.ftl().precondition();
            const std::uint64_t space = ssd.ftl().logicalPages();
            sim::Tick t = 0;
            for (std::uint64_t id = 1; id <= 150; ++id) {
                ssd::HostRequest req;
                req.id = id;
                t += rng.uniformInt(sim::usec(300));
                req.arrival = t;
                req.pages = 1;
                req.lpn = rng.uniformInt(space - 1);
                req.isRead = rng.chance(0.7);
                ssd.eventQueue().schedule(
                    req.arrival, [&ssd, req] { ssd.submit(req); });
            }
            ssd.drain();
            if (run == 0) {
                first = ssd.stats().avgResponseUs;
                first_events = ssd.eventQueue().executedEvents();
            } else {
                EXPECT_DOUBLE_EQ(ssd.stats().avgResponseUs, first)
                    << core::name(mech);
                EXPECT_EQ(ssd.eventQueue().executedEvents(), first_events)
                    << core::name(mech);
            }
        }
    }
}

} // namespace
} // namespace ssdrr

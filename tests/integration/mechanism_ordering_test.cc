/**
 * @file
 * Full-stack property tests: the paper's headline orderings must
 * hold end-to-end for every workload and operating point, not just
 * for isolated read plans.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

namespace ssdrr {
namespace {

ssd::Config
cfgAt(double pe, double ret)
{
    ssd::Config c = ssd::Config::small();
    c.basePeKilo = pe;
    c.baseRetentionMonths = ret;
    return c;
}

double
runMechanism(const ssd::Config &cfg, core::Mechanism m,
             const workload::Trace &trace)
{
    ssd::Ssd ssd(cfg, m);
    return ssd.replay(trace).avgResponseUs;
}

/**
 * Sweep (workload x operating point); each instance replays one
 * trace under all mechanisms and checks the Fig. 14/15 orderings.
 */
class MechanismOrdering
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::tuple<double, double>>>
{
  protected:
    std::map<core::Mechanism, double>
    runAll()
    {
        const auto [wl, op] = GetParam();
        const auto [pe, ret] = op;
        const ssd::Config cfg = cfgAt(pe, ret);
        // Moderate load: at near-saturation, scheduling noise can
        // invert sub-percent orderings; the paper's orderings are
        // service-time properties, which moderate load preserves.
        workload::SyntheticSpec spec = workload::findWorkload(wl);
        spec.iops *= 0.5;
        const workload::Trace trace = workload::generateSynthetic(
            spec, cfg.logicalPages(), 400, 31);
        std::map<core::Mechanism, double> rt;
        for (core::Mechanism m :
             {core::Mechanism::Baseline, core::Mechanism::PR2,
              core::Mechanism::AR2, core::Mechanism::PnAR2,
              core::Mechanism::NoRR, core::Mechanism::PSO,
              core::Mechanism::PSO_PnAR2}) {
            rt[m] = runMechanism(cfg, m, trace);
        }
        return rt;
    }
};

TEST_P(MechanismOrdering, PaperOrderingHolds)
{
    const auto rt = runAll();
    const double slack = 1.02; // scheduling noise tolerance

    // NoRR is the lower bound on everything (Section 7.2).
    for (const auto &[m, v] : rt)
        EXPECT_LE(rt.at(core::Mechanism::NoRR), v * slack)
            << core::name(m);

    // Both techniques beat Baseline; combined beats each alone.
    EXPECT_LE(rt.at(core::Mechanism::PR2),
              rt.at(core::Mechanism::Baseline) * slack);
    EXPECT_LE(rt.at(core::Mechanism::AR2),
              rt.at(core::Mechanism::Baseline) * slack);
    EXPECT_LE(rt.at(core::Mechanism::PnAR2),
              rt.at(core::Mechanism::PR2) * slack);
    EXPECT_LE(rt.at(core::Mechanism::PnAR2),
              rt.at(core::Mechanism::AR2) * slack);

    // PSO beats Baseline; stacking PnAR2 on PSO helps further
    // (Section 7.3: complementarity).
    EXPECT_LE(rt.at(core::Mechanism::PSO),
              rt.at(core::Mechanism::Baseline) * slack);
    EXPECT_LE(rt.at(core::Mechanism::PSO_PnAR2),
              rt.at(core::Mechanism::PSO) * slack);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MechanismOrdering,
    ::testing::Combine(
        ::testing::Values("hm_0", "usr_1", "YCSB-C"),
        ::testing::Values(std::make_tuple(0.0, 3.0),
                          std::make_tuple(1.0, 6.0),
                          std::make_tuple(2.0, 12.0))));

TEST(MechanismGains, WorseConditionsLargerGain)
{
    // Section 7.2 observation 3: "the worse the operating
    // conditions, the larger the performance gain".
    const workload::SyntheticSpec spec = workload::findWorkload("usr_1");
    double prev_gain = -1.0;
    for (const auto &[pe, ret] :
         std::vector<std::pair<double, double>>{{0.0, 1.0}, {1.0, 6.0},
                                                {2.0, 12.0}}) {
        const ssd::Config cfg = cfgAt(pe, ret);
        const workload::Trace trace = workload::generateSynthetic(
            spec, cfg.logicalPages(), 400, 17);
        const double base =
            runMechanism(cfg, core::Mechanism::Baseline, trace);
        const double pnar2 =
            runMechanism(cfg, core::Mechanism::PnAR2, trace);
        const double gain = 1.0 - pnar2 / base;
        EXPECT_GT(gain, prev_gain)
            << "PEC=" << pe << " tRET=" << ret;
        prev_gain = gain;
    }
    EXPECT_GT(prev_gain, 0.30)
        << "worst-condition PnAR2 gain should approach the paper's "
           "35-52% band";
}

TEST(MechanismGains, ReadDominantBenefitsMoreThanWriteDominant)
{
    const ssd::Config cfg = cfgAt(1.0, 6.0);
    const workload::Trace writes = workload::generateSynthetic(
        workload::findWorkload("stg_0"), cfg.logicalPages(), 400, 3);
    const workload::Trace reads = workload::generateSynthetic(
        workload::findWorkload("YCSB-C"), cfg.logicalPages(), 400, 3);

    const double gain_w =
        1.0 - runMechanism(cfg, core::Mechanism::PnAR2, writes) /
                  runMechanism(cfg, core::Mechanism::Baseline, writes);
    const double gain_r =
        1.0 - runMechanism(cfg, core::Mechanism::PnAR2, reads) /
                  runMechanism(cfg, core::Mechanism::Baseline, reads);
    EXPECT_GT(gain_r, gain_w);
    EXPECT_GT(gain_w, 0.0)
        << "even write-dominant workloads benefit (Section 7.2, "
           "stg_0 gains 18.7% on average)";
}

TEST(MechanismGains, Pr2GainGrowsWithRetrySteps)
{
    // PR2 saves N_RR * (tDMA + tECC): its relative gain must grow
    // with the average step count.
    const workload::SyntheticSpec spec = workload::findWorkload("mds_1");
    double prev = -1.0;
    for (const auto &[pe, ret] :
         std::vector<std::pair<double, double>>{{0.0, 3.0},
                                                {2.0, 12.0}}) {
        const ssd::Config cfg = cfgAt(pe, ret);
        const workload::Trace trace = workload::generateSynthetic(
            spec, cfg.logicalPages(), 300, 23);
        const double base =
            runMechanism(cfg, core::Mechanism::Baseline, trace);
        const double pr2 = runMechanism(cfg, core::Mechanism::PR2, trace);
        const double gain = 1.0 - pr2 / base;
        EXPECT_GT(gain, prev);
        prev = gain;
    }
}

} // namespace
} // namespace ssdrr

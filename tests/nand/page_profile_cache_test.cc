/**
 * @file
 * Tests for the pageProfile memoization cache: bit-identical
 * results, hit/miss accounting, operating-point sensitivity, and
 * erase invalidation.
 */

#include <gtest/gtest.h>

#include "nand/error_model.hh"
#include "nand/page_profile_cache.hh"

namespace ssdrr::nand {
namespace {

OperatingPoint
midLife()
{
    OperatingPoint op;
    op.peKilo = 1.0;
    op.retentionMonths = 6.0;
    op.temperatureC = 30.0;
    return op;
}

void
expectSameProfile(const PageErrorProfile &a, const PageErrorProfile &b)
{
    EXPECT_EQ(a.retrySteps, b.retrySteps);
    EXPECT_DOUBLE_EQ(a.finalErrors, b.finalErrors);
    EXPECT_DOUBLE_EQ(a.decayRatio, b.decayRatio);
    EXPECT_EQ(a.baseRetrySteps, b.baseRetrySteps);
    EXPECT_EQ(a.baseSuccess, b.baseSuccess);
    EXPECT_DOUBLE_EQ(a.baseLastStepErrors, b.baseLastStepErrors);
}

TEST(PageProfileCache, ReturnsBitIdenticalProfiles)
{
    ErrorModel model;
    PageProfileCache cache(model, 256);
    const OperatingPoint op = midLife();
    for (std::uint64_t page = 0; page < 64; ++page) {
        const PageErrorProfile direct =
            model.pageProfile(1, 17, page, op);
        const PageErrorProfile cached = cache.get(1, 17, page, op);
        expectSameProfile(direct, cached);
        // Second lookup must come from the cache and stay identical.
        const PageErrorProfile again = cache.get(1, 17, page, op);
        expectSameProfile(direct, again);
    }
    EXPECT_GT(cache.hits(), 0u);
}

TEST(PageProfileCache, CountsHitsAndMisses)
{
    ErrorModel model;
    PageProfileCache cache(model, 256);
    const OperatingPoint op = midLife();
    cache.get(0, 1, 2, op);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    cache.get(0, 1, 2, op);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(PageProfileCache, OperatingPointChangeRecomputes)
{
    ErrorModel model;
    PageProfileCache cache(model, 256);
    OperatingPoint op = midLife();
    const PageErrorProfile before = cache.get(0, 3, 9, op);
    op.retentionMonths = 12.0; // aged: same page, different op
    const PageErrorProfile after = cache.get(0, 3, 9, op);
    EXPECT_EQ(cache.misses(), 2u);
    expectSameProfile(after, model.pageProfile(0, 3, 9, op));
    // A weak page gets weaker with retention, never stronger.
    EXPECT_GE(after.retrySteps, before.retrySteps);
}

TEST(PageProfileCache, InvalidateBlockDropsOnlyThatBlock)
{
    ErrorModel model;
    PageProfileCache cache(model, 256);
    const OperatingPoint op = midLife();
    cache.get(0, 5, 1, op);
    cache.get(0, 6, 1, op);
    cache.invalidateBlock(0, 5);
    EXPECT_GE(cache.invalidations(), 1u);
    const std::uint64_t misses_before = cache.misses();
    cache.get(0, 6, 1, op); // untouched block still hits
    EXPECT_EQ(cache.misses(), misses_before);
    cache.get(0, 5, 1, op); // invalidated block recomputes
    EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(PageProfileCache, ZeroCapacityDisablesCaching)
{
    ErrorModel model;
    PageProfileCache cache(model, 0);
    const OperatingPoint op = midLife();
    const PageErrorProfile a = cache.get(2, 2, 2, op);
    expectSameProfile(a, model.pageProfile(2, 2, 2, op));
    cache.get(2, 2, 2, op);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(PageProfileCache, MemoizedWalkMatchesClosedForm)
{
    // pageProfile memoizes the default-condition walk; a hand-built
    // copy of the same profile without the memo must walk to the
    // same outcome.
    ErrorModel model;
    const OperatingPoint op = midLife();
    for (std::uint64_t page = 0; page < 32; ++page) {
        const PageErrorProfile prof = model.pageProfile(0, 11, page, op);
        PageErrorProfile bare;
        bare.retrySteps = prof.retrySteps;
        bare.finalErrors = prof.finalErrors;
        bare.decayRatio = prof.decayRatio;
        const ReadOutcome fast = model.simulateRead(prof);
        const ReadOutcome slow = model.simulateRead(bare);
        EXPECT_EQ(fast.retrySteps, slow.retrySteps);
        EXPECT_EQ(fast.success, slow.success);
        EXPECT_DOUBLE_EQ(fast.lastStepErrors, slow.lastStepErrors);
    }
}

} // namespace
} // namespace ssdrr::nand

/**
 * @file
 * Tests for NAND timing parameters (paper Table 1, Equation 1).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "nand/timing.hh"

namespace ssdrr::nand {
namespace {

TEST(Timing, Table1Defaults)
{
    const TimingParams t = TimingParams::table1();
    EXPECT_EQ(t.tPRE, sim::usec(24));
    EXPECT_EQ(t.tEVAL, sim::usec(5));
    EXPECT_EQ(t.tDISCH, sim::usec(10));
    EXPECT_EQ(t.tDMA, sim::usec(16));
    EXPECT_EQ(t.tECC, sim::usec(20));
    EXPECT_EQ(t.tPROG, sim::usec(700));
    EXPECT_EQ(t.tBERS, sim::msec(5));
    EXPECT_EQ(t.tSET, sim::usec(1));
    EXPECT_EQ(t.tRST, sim::usec(5));
}

TEST(Timing, SenseLatencyIsSumOfPhases)
{
    const TimingParams t;
    // tPRE + tEVAL + tDISCH = 24 + 5 + 10 = 39 us (5:1:2 ratio).
    EXPECT_EQ(t.senseLatency(), sim::usec(39));
}

TEST(Timing, PhaseRatioIsFiveOneTwo)
{
    const TimingParams t;
    // Section 4: tPRE:tEVAL:tDISCH ~ 5:1:2 (24:5:10 is the 48-layer
    // chip's actual ratio, approximately 5:1:2).
    EXPECT_NEAR(static_cast<double>(t.tPRE) / t.tEVAL, 5.0, 0.25);
    EXPECT_NEAR(static_cast<double>(t.tDISCH) / t.tEVAL, 2.0, 0.01);
}

TEST(Timing, TrPerPageTypeUsesNSense)
{
    const TimingParams t;
    // Footnote 14: N_SENSE = {2, 3, 2} -> tR = {78, 117, 78} us.
    EXPECT_EQ(t.tR(PageType::LSB), sim::usec(78));
    EXPECT_EQ(t.tR(PageType::CSB), sim::usec(117));
    EXPECT_EQ(t.tR(PageType::MSB), sim::usec(78));
}

TEST(Timing, AverageTrMatchesTable1)
{
    const TimingParams t;
    // Table 1: tR(avg.) = 90/91 us ((78 + 117 + 78) / 3 = 91).
    EXPECT_NEAR(sim::toUsec(t.tRAvg()), 91.0, 1.01);
}

TEST(Timing, PreReductionShortensOnlyPrecharge)
{
    const TimingParams t;
    TimingReduction r;
    r.pre = 0.5;
    // 24*0.5 + 5 + 10 = 27 us.
    EXPECT_EQ(t.senseLatency(r), sim::usec(27));
}

TEST(Timing, FortyPercentPreGivesQuarterTrReduction)
{
    // Section 5.2.1: "tPRE can be safely reduced by at least 40% ...
    // which leads to a 25% reduction in tR".
    const TimingParams t;
    TimingReduction r;
    r.pre = 0.40;
    const double rho = t.rho(r);
    EXPECT_NEAR(1.0 - rho, 0.246, 0.01);
}

TEST(Timing, EvalContributesOneEighthOfSense)
{
    // Section 5.2.1: tEVAL is 1/8 of tR; a 20% tEVAL cut buys only
    // 2.5% of tR.
    const TimingParams t;
    TimingReduction r;
    r.eval = 0.20;
    EXPECT_NEAR(1.0 - t.rho(r), 0.0256, 0.002);
}

TEST(Timing, DischargeIsQuarterOfSense)
{
    // Section 5.2.2: tDISCH is ~25% of tR; 7% cut -> 1.75% tR.
    const TimingParams t;
    TimingReduction r;
    r.disch = 0.07;
    EXPECT_NEAR(1.0 - t.rho(r), 0.0179, 0.002);
}

TEST(Timing, RhoOfNoReductionIsOne)
{
    const TimingParams t;
    EXPECT_DOUBLE_EQ(t.rho(TimingReduction{}), 1.0);
}

TEST(Timing, ReductionNoneDetectsAnyField)
{
    TimingReduction r;
    EXPECT_TRUE(r.none());
    r.pre = 0.1;
    EXPECT_FALSE(r.none());
    r = TimingReduction{};
    r.eval = 0.1;
    EXPECT_FALSE(r.none());
    r = TimingReduction{};
    r.disch = 0.1;
    EXPECT_FALSE(r.none());
}

TEST(Timing, InvalidReductionPanics)
{
    const TimingParams t;
    TimingReduction r;
    r.pre = 1.0;
    EXPECT_THROW(t.senseLatency(r), std::logic_error);
    r.pre = -0.1;
    EXPECT_THROW(t.senseLatency(r), std::logic_error);
}

/** Property: rho decreases monotonically with the tPRE reduction. */
class RhoMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(RhoMonotone, MoreReductionSmallerRho)
{
    const TimingParams t;
    TimingReduction lo, hi;
    lo.pre = GetParam();
    hi.pre = GetParam() + 0.1;
    EXPECT_GT(t.rho(lo), t.rho(hi));
    EXPECT_GT(t.rho(hi), 0.0);
    EXPECT_LT(t.rho(lo), 1.0);
}

INSTANTIATE_TEST_SUITE_P(PreSweep, RhoMonotone,
                         ::testing::Values(0.05, 0.15, 0.25, 0.35, 0.45,
                                           0.55));

} // namespace
} // namespace ssdrr::nand

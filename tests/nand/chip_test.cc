/**
 * @file
 * Tests for the command-level NAND chip model: die occupancy,
 * program/erase timing, suspension and SET FEATURE state.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "nand/chip.hh"

namespace ssdrr::nand {
namespace {

class ChipTest : public ::testing::Test
{
  protected:
    ChipTest() : chip_(eq_, Geometry{}, TimingParams{}, 0) {}

    sim::EventQueue eq_;
    Chip chip_;
};

TEST_F(ChipTest, StartsIdleOnAllDies)
{
    for (std::uint32_t d = 0; d < Geometry{}.dies; ++d) {
        EXPECT_TRUE(chip_.dieIdle(d));
        EXPECT_EQ(chip_.dieOp(d), DieOp::None);
        EXPECT_EQ(chip_.dieFreeAt(d), eq_.now());
        EXPECT_TRUE(chip_.dieTiming(d).none());
    }
}

TEST_F(ChipTest, ReadOccupiesDieUntilGivenTick)
{
    bool done = false;
    chip_.occupyRead(0, sim::usec(100), [&] { done = true; });
    EXPECT_FALSE(chip_.dieIdle(0));
    EXPECT_EQ(chip_.dieOp(0), DieOp::Read);
    EXPECT_EQ(chip_.dieFreeAt(0), sim::usec(100));
    EXPECT_TRUE(chip_.dieIdle(1)) << "other dies are independent";
    eq_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eq_.now(), sim::usec(100));
    EXPECT_TRUE(chip_.dieIdle(0));
}

TEST_F(ChipTest, ProgramTakesTprog)
{
    bool done = false;
    chip_.beginProgram(1, [&] { done = true; });
    EXPECT_EQ(chip_.dieOp(1), DieOp::Program);
    eq_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eq_.now(), TimingParams{}.tPROG);
}

TEST_F(ChipTest, EraseTakesTbers)
{
    bool done = false;
    chip_.beginErase(2, [&] { done = true; });
    EXPECT_EQ(chip_.dieOp(2), DieOp::Erase);
    eq_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eq_.now(), TimingParams{}.tBERS);
}

TEST_F(ChipTest, DoubleOccupancyPanics)
{
    chip_.occupyRead(0, sim::usec(50), [] {});
    EXPECT_THROW(chip_.beginProgram(0, [] {}), std::logic_error);
    EXPECT_THROW(chip_.occupyRead(0, sim::usec(60), [] {}),
                 std::logic_error);
}

TEST_F(ChipTest, SuspendPausesProgramAndPreservesRemainingTime)
{
    bool prog_done = false;
    chip_.beginProgram(0, [&] { prog_done = true; });

    // Let 200 us of the 700 us program elapse.
    eq_.schedule(sim::usec(200), [&] {
        EXPECT_TRUE(chip_.suspend(0));
        EXPECT_TRUE(chip_.dieIdle(0)) << "die array free for reads";
        EXPECT_TRUE(chip_.hasSuspended(0));
        EXPECT_EQ(chip_.suspendCount(), 1u);
    });
    eq_.run();
    EXPECT_FALSE(prog_done) << "suspended program must not complete";

    // Resume: remaining 500 us + tSUS overhead.
    chip_.resume(0, eq_.now());
    eq_.run();
    EXPECT_TRUE(prog_done);
    EXPECT_EQ(eq_.now(),
              sim::usec(200) + sim::usec(500) + TimingParams{}.tSUS);
}

TEST_F(ChipTest, SuspendErase)
{
    bool done = false;
    chip_.beginErase(0, [&] { done = true; });
    eq_.schedule(sim::msec(1), [&] { EXPECT_TRUE(chip_.suspend(0)); });
    eq_.run();
    EXPECT_FALSE(done);
    chip_.resume(0, eq_.now());
    eq_.run();
    EXPECT_TRUE(done);
    // 1 ms elapsed + 4 ms remaining + suspend overhead.
    EXPECT_EQ(eq_.now(), sim::msec(1) + sim::msec(4) + TimingParams{}.tSUS);
}

TEST_F(ChipTest, SuspendOfIdleOrReadFails)
{
    EXPECT_FALSE(chip_.suspend(0)) << "nothing to suspend";
    chip_.occupyRead(0, sim::usec(10), [] {});
    EXPECT_FALSE(chip_.suspend(0)) << "reads are not suspendable";
}

TEST_F(ChipTest, ReadDuringSuspensionThenResume)
{
    // The paper's baseline behaviour [50, 91]: suspend a program,
    // service the read, resume the program.
    bool prog_done = false, read_done = false;
    chip_.beginProgram(0, [&] { prog_done = true; });
    eq_.schedule(sim::usec(100), [&] {
        ASSERT_TRUE(chip_.suspend(0));
        chip_.occupyRead(0, eq_.now() + sim::usec(78),
                         [&] { read_done = true; });
    });
    eq_.run();
    EXPECT_TRUE(read_done);
    EXPECT_FALSE(prog_done);
    chip_.resume(0, eq_.now());
    eq_.run();
    EXPECT_TRUE(prog_done);
}

TEST_F(ChipTest, ResumeAtFutureTick)
{
    bool done = false;
    chip_.beginProgram(0, [&] { done = true; });
    eq_.schedule(sim::usec(100), [&] { chip_.suspend(0); });
    eq_.run();
    chip_.resume(0, eq_.now() + sim::usec(50));
    eq_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eq_.now(), sim::usec(100) + sim::usec(50) +
                             sim::usec(600) + TimingParams{}.tSUS);
}

TEST_F(ChipTest, ResumeWithoutSuspendPanics)
{
    EXPECT_THROW(chip_.resume(0, eq_.now()), std::logic_error);
}

TEST_F(ChipTest, DoubleSuspendPanics)
{
    chip_.beginProgram(0, [] {});
    eq_.schedule(sim::usec(10), [&] {
        ASSERT_TRUE(chip_.suspend(0));
        chip_.beginProgram(0, [] {});
        EXPECT_THROW(chip_.suspend(0), std::logic_error)
            << "only one suspended op per die";
    });
    eq_.run(sim::usec(10));
}

TEST_F(ChipTest, SetFeatureChangesEffectiveTr)
{
    const TimingParams t;
    EXPECT_EQ(chip_.tR(0, PageType::LSB), t.tR(PageType::LSB));

    TimingReduction red;
    red.pre = 0.40;
    chip_.setFeature(0, red);
    EXPECT_EQ(chip_.tR(0, PageType::LSB), t.tR(PageType::LSB, red));
    EXPECT_LT(chip_.tR(0, PageType::LSB), t.tR(PageType::LSB));
    EXPECT_EQ(chip_.tR(1, PageType::LSB), t.tR(PageType::LSB))
        << "SET FEATURE is per-die";

    // Roll back to default timing.
    chip_.setFeature(0, TimingReduction{});
    EXPECT_EQ(chip_.tR(0, PageType::LSB), t.tR(PageType::LSB));
}

TEST_F(ChipTest, SetFeatureRejectsInvalidValue)
{
    TimingReduction bad;
    bad.pre = 1.2;
    EXPECT_THROW(chip_.setFeature(0, bad), std::logic_error);
}

TEST_F(ChipTest, OutOfRangeDiePanics)
{
    EXPECT_THROW(chip_.dieIdle(99), std::logic_error);
    EXPECT_THROW(chip_.occupyRead(99, sim::usec(1), [] {}),
                 std::logic_error);
}

TEST_F(ChipTest, ConcurrentOpsOnDistinctDies)
{
    int done = 0;
    chip_.occupyRead(0, sim::usec(78), [&] { ++done; });
    chip_.beginProgram(1, [&] { ++done; });
    chip_.beginErase(2, [&] { ++done; });
    chip_.occupyRead(3, sim::usec(117), [&] { ++done; });
    eq_.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(eq_.now(), TimingParams{}.tBERS)
        << "erase is the longest of the four";
}

} // namespace
} // namespace ssdrr::nand

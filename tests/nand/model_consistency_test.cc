/**
 * @file
 * Cross-model consistency: the physical threshold-voltage model and
 * the calibrated error model are independent implementations of the
 * same chip; their qualitative behaviours must agree even though
 * only the error model is fitted to the paper's numbers.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "nand/error_model.hh"
#include "nand/vth_model.hh"

namespace ssdrr::nand {
namespace {

class ModelConsistency
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
  protected:
    ErrorModel error_;
};

TEST_P(ModelConsistency, AgingDegradesBothModels)
{
    const auto [pe, ret] = GetParam();
    const OperatingPoint mild{pe, ret, 30.0};
    const OperatingPoint harsh{pe + 0.5, ret + 3.0, 30.0};

    // Physical model: RBER at the default VREF grows with aging.
    VthModel vth_mild, vth_harsh;
    vth_mild.age(mild);
    vth_harsh.age(harsh);
    // Error model: retry demand grows with aging.
    EXPECT_GT(error_.meanRetrySteps(harsh), error_.meanRetrySteps(mild));
    for (PageType t : {PageType::LSB, PageType::CSB, PageType::MSB}) {
        EXPECT_GT(vth_harsh.pageRber(t, 0.0), vth_mild.pageRber(t, 0.0))
            << pageTypeName(t);
    }
}

TEST_P(ModelConsistency, ResidualErrorsAtOptGrowTogether)
{
    // Section 5.1's second observation: even VOPT cannot avoid RBER
    // growth. Both the physical model's RBER-at-VOPT and the error
    // model's M_ERR must increase with condition severity.
    const auto [pe, ret] = GetParam();
    const OperatingPoint mild{pe, ret, 30.0};
    const OperatingPoint harsh{pe + 0.5, ret + 3.0, 30.0};

    VthModel vth_mild, vth_harsh;
    vth_mild.age(mild);
    vth_harsh.age(harsh);
    EXPECT_GT(error_.finalErrorsMax(harsh), error_.finalErrorsMax(mild));
    EXPECT_GT(vth_harsh.pageRberAtOpt(PageType::CSB),
              vth_mild.pageRberAtOpt(PageType::CSB));
}

TEST_P(ModelConsistency, VoptDriftScalesWithRetrySteps)
{
    // The retry table walks ~30 mV per step; the physical VOPT drift
    // divided by the step size should land in the same regime as the
    // error model's step count (same order of magnitude, growing
    // together).
    const auto [pe, ret] = GetParam();
    if (ret == 0.0)
        GTEST_SKIP() << "no drift without retention";
    const OperatingPoint op{pe, ret, 30.0};
    VthModel vth;
    vth.age(op);
    // Average drift across CSB boundaries (most sensitive page).
    double drift_mv = 0.0;
    const auto &bs = VthModel::boundariesOf(PageType::CSB);
    for (int b : bs)
        drift_mv += 1000.0 * (vth.defaultVref(b) - vth.optimalVref(b));
    drift_mv /= static_cast<double>(bs.size());
    const double steps_physical = drift_mv / 30.0;
    const double steps_model = error_.meanRetrySteps(op);
    EXPECT_GT(steps_physical, 0.0);
    // Same regime: within ~4x of each other across the grid.
    EXPECT_LT(steps_physical, steps_model * 4.0 + 4.0);
    EXPECT_GT(steps_physical * 4.0 + 4.0, steps_model);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelConsistency,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0, 1.5),
                       ::testing::Values(0.0, 3.0, 6.0, 9.0)));

} // namespace
} // namespace ssdrr::nand

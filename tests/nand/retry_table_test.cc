/**
 * @file
 * Tests for the manufacturer read-retry table model.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "nand/retry_table.hh"

namespace ssdrr::nand {
namespace {

TEST(RetryTable, DefaultsMatchCalibration)
{
    const RetryTable t;
    EXPECT_EQ(t.steps(), 44);
    EXPECT_DOUBLE_EQ(t.stepMv(), 30.0);
}

TEST(RetryTable, StepZeroIsDefaultVref)
{
    const RetryTable t;
    EXPECT_DOUBLE_EQ(t.offsetMv(0), 0.0);
}

TEST(RetryTable, OffsetsWalkDownUniformly)
{
    const RetryTable t(10, 25.0);
    for (int k = 1; k <= 10; ++k) {
        EXPECT_DOUBLE_EQ(t.offsetMv(k), -25.0 * k);
        EXPECT_LT(t.offsetMv(k), t.offsetMv(k - 1))
            << "retention loss means VREF must walk downward";
    }
}

TEST(RetryTable, OutOfRangeStepPanics)
{
    const RetryTable t(5, 30.0);
    EXPECT_THROW(t.offsetMv(-1), std::logic_error);
    EXPECT_THROW(t.offsetMv(6), std::logic_error);
    EXPECT_NO_THROW(t.offsetMv(5));
}

TEST(RetryTable, DegenerateParametersPanic)
{
    EXPECT_THROW(RetryTable(0, 30.0), std::logic_error);
    EXPECT_THROW(RetryTable(10, 0.0), std::logic_error);
    EXPECT_THROW(RetryTable(10, -5.0), std::logic_error);
}

} // namespace
} // namespace ssdrr::nand

/**
 * @file
 * Tests for NAND geometry, page-type mapping and physical addresses.
 */

#include <gtest/gtest.h>

#include "nand/types.hh"

namespace ssdrr::nand {
namespace {

TEST(PageType, NSenseMatchesFootnote14)
{
    EXPECT_EQ(nSense(PageType::LSB), 2);
    EXPECT_EQ(nSense(PageType::CSB), 3);
    EXPECT_EQ(nSense(PageType::MSB), 2);
}

TEST(PageType, InterleavingCyclesThroughTypes)
{
    EXPECT_EQ(pageTypeOf(0), PageType::LSB);
    EXPECT_EQ(pageTypeOf(1), PageType::CSB);
    EXPECT_EQ(pageTypeOf(2), PageType::MSB);
    EXPECT_EQ(pageTypeOf(3), PageType::LSB);
    EXPECT_EQ(pageTypeOf(575), pageTypeOf(575 % 3));
}

TEST(PageType, NamesAreStable)
{
    EXPECT_STREQ(pageTypeName(PageType::LSB), "LSB");
    EXPECT_STREQ(pageTypeName(PageType::CSB), "CSB");
    EXPECT_STREQ(pageTypeName(PageType::MSB), "MSB");
}

TEST(Geometry, PaperDefaultsMultiplyOut)
{
    const Geometry g;
    EXPECT_EQ(g.blocksPerDie(), 2u * 1888u);
    EXPECT_EQ(g.pagesPerDie(), 2ull * 1888 * 576);
    EXPECT_EQ(g.totalPages(), 4ull * 2 * 1888 * 576);
    // One chip = 4 dies x 2 planes x 1888 blocks x 576 pages x 16 KiB
    // = 128 GiB; four channels make the paper's 512-GiB SSD.
    EXPECT_NEAR(static_cast<double>(g.totalBytes()) / (1ull << 30),
                132.75, 0.01);
}

TEST(Geometry, CustomGeometryPropagates)
{
    Geometry g;
    g.dies = 2;
    g.planesPerDie = 4;
    g.blocksPerPlane = 10;
    g.pagesPerBlock = 8;
    g.pageBytes = 4096;
    EXPECT_EQ(g.blocksPerDie(), 40u);
    EXPECT_EQ(g.pagesPerDie(), 320u);
    EXPECT_EQ(g.totalPages(), 640u);
    EXPECT_EQ(g.totalBytes(), 640ull * 4096);
}

TEST(PhysAddr, FlatBlockIsUniquePerBlock)
{
    Geometry g;
    g.dies = 2;
    g.planesPerDie = 2;
    g.blocksPerPlane = 3;
    g.pagesPerBlock = 4;
    std::set<std::uint64_t> seen;
    for (std::uint32_t d = 0; d < g.dies; ++d)
        for (std::uint32_t p = 0; p < g.planesPerDie; ++p)
            for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b) {
                PhysAddr a{d, p, b, 0};
                EXPECT_TRUE(seen.insert(a.flatBlock(g)).second)
                    << "collision at die " << d << " plane " << p
                    << " block " << b;
            }
    EXPECT_EQ(seen.size(), g.dies * g.planesPerDie * g.blocksPerPlane);
}

TEST(PhysAddr, FlatPageIsDenseAndOrdered)
{
    Geometry g;
    g.dies = 1;
    g.planesPerDie = 1;
    g.blocksPerPlane = 2;
    g.pagesPerBlock = 3;
    std::uint64_t expect = 0;
    for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b)
        for (std::uint32_t pg = 0; pg < g.pagesPerBlock; ++pg) {
            PhysAddr a{0, 0, b, pg};
            EXPECT_EQ(a.flatPage(g), expect++);
        }
}

TEST(PhysAddr, TypeDerivesFromPageIndex)
{
    PhysAddr a{0, 0, 0, 4};
    EXPECT_EQ(a.type(), PageType::CSB);
}

TEST(PhysAddr, EqualityComparesAllFields)
{
    PhysAddr a{1, 1, 2, 3};
    PhysAddr b = a;
    EXPECT_TRUE(a == b);
    b.page = 4;
    EXPECT_FALSE(a == b);
    b = a;
    b.die = 0;
    EXPECT_FALSE(a == b);
}

TEST(OperatingPoint, DefaultsToFreshChipAt85C)
{
    const OperatingPoint op;
    EXPECT_DOUBLE_EQ(op.peKilo, 0.0);
    EXPECT_DOUBLE_EQ(op.retentionMonths, 0.0);
    EXPECT_DOUBLE_EQ(op.temperatureC, 85.0);
}

} // namespace
} // namespace ssdrr::nand

/**
 * @file
 * Calibration-anchor tests: every numeric claim the paper publishes
 * about its 160-chip characterization must be reproduced by the
 * analytic error model. Each test names the figure/section it
 * anchors. These are the contract between the paper and our
 * in-silico substitute for the real chips (DESIGN.md Section 3).
 */

#include <gtest/gtest.h>

#include "nand/error_model.hh"

namespace ssdrr::nand {
namespace {

class Anchors : public ::testing::Test
{
  protected:
    ErrorModel model_;

    /** Sample mean retry count over many page profiles. */
    double
    sampledMeanRetry(const OperatingPoint &op, int pages = 4000) const
    {
        double sum = 0.0;
        for (int p = 0; p < pages; ++p)
            sum += model_.pageProfile(0, p / 64, p % 64, op).retrySteps;
        return sum / pages;
    }

    /** Fraction of pages whose retry count >= k. */
    double
    fracAtLeast(const OperatingPoint &op, int k, int pages = 4000) const
    {
        int n = 0;
        for (int p = 0; p < pages; ++p)
            n += model_.pageProfile(0, p / 64, p % 64, op).retrySteps >= k
                     ? 1
                     : 0;
        return static_cast<double>(n) / pages;
    }
};

// ----- Figure 5 / Section 3.1: retry-step counts -----

TEST_F(Anchors, FreshPageNeedsNoRetry)
{
    // "a fresh page (no P/E cycling and 0 retention age) can be read
    // without a read-retry"
    const OperatingPoint fresh{0.0, 0.0, 85.0};
    EXPECT_DOUBLE_EQ(model_.meanRetrySteps(fresh), 0.0);
    EXPECT_EQ(model_.pageProfile(0, 0, 0, fresh).retrySteps, 0);
}

TEST_F(Anchors, ThreeMonthZeroPecNeedsOverThreeSteps)
{
    // Section 1: "under a 3-month data retention age at zero P/E
    // cycles ... every read requires more than three retry steps".
    const OperatingPoint op{0.0, 3.0, 85.0};
    EXPECT_GT(model_.meanRetrySteps(op), 3.0);
    EXPECT_LT(model_.meanRetrySteps(op), 7.0) << "not wildly over";
    EXPECT_GT(fracAtLeast(op, 3), 0.93)
        << "essentially every read needs > 3 steps";
}

TEST_F(Anchors, SixMonthZeroPecMajorityNeedsSevenSteps)
{
    // Section 3.1: "54.4% of reads incur at least seven retry steps
    // under a 6-month retention age ... never experienced P/E
    // cycling".
    const OperatingPoint op{0.0, 6.0, 85.0};
    const double frac = fracAtLeast(op, 7);
    EXPECT_NEAR(frac, 0.544, 0.12);
}

TEST_F(Anchors, OneKPecThreeMonthNeedsAtLeastEightSteps)
{
    // Section 3.1: "At 1K P/E cycles, at least eight read-retry
    // steps are needed ... after a 3-month retention age".
    const OperatingPoint op{1.0, 3.0, 85.0};
    EXPECT_GE(model_.meanRetrySteps(op), 8.0);
    EXPECT_GT(fracAtLeast(op, 8), 0.65);
}

TEST_F(Anchors, WorstCaseAveragesTwentyRetrySteps)
{
    // Section 3.1: "the average number of retry steps significantly
    // increases to 19.9 under a 1-year retention age at 2K P/E
    // cycles, which in turn increases tREAD by 21x on average".
    const OperatingPoint op{2.0, 12.0, 85.0};
    EXPECT_NEAR(model_.meanRetrySteps(op), 19.9, 1.5);
    EXPECT_NEAR(sampledMeanRetry(op), 19.9, 2.0);
    // tREAD multiplier = N_RR + 1.
    EXPECT_NEAR(sampledMeanRetry(op) + 1.0, 21.0, 2.0);
}

// ----- Figure 7 / Section 5.1: final-step error counts -----

TEST_F(Anchors, MerrZeroPecThreeMonthIs15At85C)
{
    // Section 5.1: "M_ERR(0, 3) = 15 ... at 85C".
    const OperatingPoint op{0.0, 3.0, 85.0};
    EXPECT_NEAR(model_.finalErrorsMax(op), 15.0, 1.0);
}

TEST_F(Anchors, MerrOneKPecOneYearIs30At85C)
{
    // Section 5.1: "M_ERR(1K, 12) = 30 at 85C".
    const OperatingPoint op{1.0, 12.0, 85.0};
    EXPECT_NEAR(model_.finalErrorsMax(op), 30.0, 1.5);
}

TEST_F(Anchors, MarginAtWorstCase30CIs44PercentOfCapability)
{
    // Section 5.1: "even M_ERR(2K, 12) at 30C is quite low, leaving
    // a margin as large as 44.4% of the ECC capability".
    const OperatingPoint op{2.0, 12.0, 30.0};
    const double margin = model_.eccMargin(op);
    EXPECT_NEAR(margin / 72.0, 0.444, 0.03);
}

TEST_F(Anchors, TemperatureAddsFiveErrorsAt30CThreeAt55C)
{
    // Section 5.1: "Compared to 85C, M_ERR at 30C and 55C is higher
    // by 5 and 3 errors, respectively".
    const OperatingPoint base{1.0, 6.0, 85.0};
    OperatingPoint cold = base, mild = base;
    cold.temperatureC = 30.0;
    mild.temperatureC = 55.0;
    EXPECT_NEAR(model_.finalErrorsMax(cold) - model_.finalErrorsMax(base),
                5.0, 0.5);
    EXPECT_NEAR(model_.finalErrorsMax(mild) - model_.finalErrorsMax(base),
                3.0, 0.6);
}

TEST_F(Anchors, WorstCasePrescribedConditionLeavesMargin)
{
    // Section 5.1: "there is a large ECC-capability margin in the
    // final retry step even under the worst-case operating
    // conditions prescribed by manufacturers (1-year retention age
    // at 1.5K P/E cycles)".
    const OperatingPoint op{Calibration::worstPeKilo,
                            Calibration::worstRetentionMonths, 30.0};
    EXPECT_GT(model_.eccMargin(op), 0.25 * 72.0);
}

// ----- Figure 8 / Section 5.2.1: individual timing reduction -----

TEST_F(Anchors, SafeIndividualReductionsAtWorstCase)
{
    // "Even under a 1-year retention age at 2K P/E cycles (where
    // M_ERR = 35), we can safely reduce tPRE, tEVAL, and tDISCH by
    // 47%, 10%, and 27%, respectively."
    const OperatingPoint op{2.0, 12.0, 85.0};
    EXPECT_NEAR(model_.finalErrorsMax(op), 35.0, 1.5);
    const double budget = 72.0 - model_.finalErrorsMax(op);

    TimingReduction pre;
    pre.pre = 0.47;
    EXPECT_LE(model_.deltaErrors(pre, op), budget)
        << "47% tPRE must fit in the margin";

    TimingReduction ev;
    ev.eval = 0.10;
    EXPECT_LE(model_.deltaErrors(ev, op), budget)
        << "10% tEVAL must fit in the margin";

    TimingReduction di;
    di.disch = 0.27;
    EXPECT_LE(model_.deltaErrors(di, op), budget)
        << "27% tDISCH must fit in the margin";
}

TEST_F(Anchors, EvalReductionIsCostIneffective)
{
    // "Reducing tEVAL by 20% introduces 30 additional bit errors
    // (41.7% of the ECC capability) even for a fresh page."
    const OperatingPoint fresh{0.0, 0.0, 85.0};
    TimingReduction ev;
    ev.eval = 0.20;
    EXPECT_NEAR(model_.deltaErrors(ev, fresh), 30.0, 4.0);
}

TEST_F(Anchors, RetentionRaisesPrePenaltyBy60Percent)
{
    // Fig. 8(a): "When reducing tPRE by 47% ... a 1-year retention
    // age increases dM_ERR by 60% at 2K P/E cycles."
    TimingReduction pre;
    pre.pre = 0.47;
    const OperatingPoint young{2.0, 0.0, 85.0};
    const OperatingPoint aged{2.0, 12.0, 85.0};
    const double ratio = model_.deltaErrors(pre, aged) /
                         model_.deltaErrors(pre, young);
    EXPECT_NEAR(ratio, 1.60, 0.12);
}

// ----- Figure 9 / Section 5.2.2: combined reduction -----

TEST_F(Anchors, IndividualReductionsAtOneKFresh)
{
    // "when we reduce tPRE by 54% and tDISCH by 20% individually,
    // dM_ERR(1K, 0) is 35 and 8, respectively".
    const OperatingPoint op{1.0, 0.0, 85.0};
    TimingReduction pre;
    pre.pre = 0.54;
    EXPECT_NEAR(model_.deltaErrors(pre, op), 35.0, 5.0);
    TimingReduction di;
    di.disch = 0.20;
    EXPECT_NEAR(model_.deltaErrors(di, op), 8.0, 2.0);
}

TEST_F(Anchors, CombinedReductionBlowsPastCapability)
{
    // "simultaneous reduction of the two timing parameters increases
    // M_ERR far beyond the ECC capability" at (54%, 20%), (1K, 0).
    const OperatingPoint op{1.0, 0.0, 85.0};
    TimingReduction both;
    both.pre = 0.54;
    both.disch = 0.20;
    EXPECT_GT(model_.finalErrorsMean(op) + model_.deltaErrors(both, op),
              72.0);
}

TEST_F(Anchors, CombinedExceedsSumOfIndividuals)
{
    // Fig. 9: reducing both parameters at once adds more errors than
    // the sum of individual reductions (coupling via the precharge).
    const OperatingPoint op{1.0, 0.0, 85.0};
    TimingReduction pre, di, both;
    pre.pre = 0.40;
    di.disch = 0.20;
    both.pre = 0.40;
    both.disch = 0.20;
    EXPECT_GT(model_.deltaErrors(both, op),
              model_.deltaErrors(pre, op) + model_.deltaErrors(di, op));
}

TEST_F(Anchors, PreBeatsDischargeForSameReduction)
{
    // "It is more beneficial to reduce tPRE than to reduce tDISCH"
    // for (x, y) swapped: dM(pre=x, disch=y) < dM(pre=y, disch=x)
    // when x > y.
    const OperatingPoint op{1.0, 0.0, 85.0};
    TimingReduction a, b;
    a.pre = 0.34;
    a.disch = 0.07;
    b.pre = 0.07;
    b.disch = 0.34;
    EXPECT_LT(model_.deltaErrors(a, op), model_.deltaErrors(b, op));
}

TEST_F(Anchors, SevenPercentDischargeCostsAtMostFourErrors)
{
    // "reducing tDISCH by 7% hardly increases the number of bit
    // errors (by 4 at most) under every operating condition".
    TimingReduction di;
    di.disch = 0.07;
    for (double pe : {0.0, 1.0, 2.0}) {
        for (double ret : {0.0, 3.0, 6.0, 12.0}) {
            const OperatingPoint op{pe, ret, 85.0};
            EXPECT_LE(model_.deltaErrors(di, op), 4.0)
                << "PEC=" << pe << " tRET=" << ret;
        }
    }
}

// ----- Figure 10 / Section 5.2.3: temperature effect on dM -----

TEST_F(Anchors, TemperatureAddsAtMostSevenErrorsToPrePenalty)
{
    // "it is only up to 7 additional bit errors even under a 1-year
    // retention age at 2K P/E cycles" (30C vs 85C).
    TimingReduction pre;
    pre.pre = 0.40;
    const OperatingPoint hot{2.0, 12.0, 85.0};
    const OperatingPoint cold{2.0, 12.0, 30.0};
    const double extra = model_.deltaErrors(pre, cold) -
                         model_.deltaErrors(pre, hot);
    EXPECT_GT(extra, 1.0);
    EXPECT_LE(extra, 7.5);
}

TEST_F(Anchors, ColderMeansMorePenalty)
{
    TimingReduction pre;
    pre.pre = 0.40;
    const OperatingPoint op85{1.0, 12.0, 85.0};
    const OperatingPoint op55{1.0, 12.0, 55.0};
    const OperatingPoint op30{1.0, 12.0, 30.0};
    EXPECT_LT(model_.deltaErrors(pre, op85),
              model_.deltaErrors(pre, op55));
    EXPECT_LT(model_.deltaErrors(pre, op55),
              model_.deltaErrors(pre, op30));
}

// ----- Figure 11 / Section 6.2: safe tPRE reduction with margin -----

TEST_F(Anchors, SafeReductionSpansFortyToFiftyFourPercent)
{
    // "even with the 14-bit margin, we can significantly reduce tPRE
    // by at least 40% (up to 54%) under any operating condition".
    double lo = 1.0, hi = 0.0;
    for (double pe : {0.0, 0.5, 1.0, 1.5, 2.0}) {
        for (double ret : {0.0, 1.0, 3.0, 6.0, 9.0, 12.0}) {
            const OperatingPoint op{pe, ret, 85.0};
            const double x = model_.maxSafePreReduction(op);
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
    }
    EXPECT_GE(lo, 0.40) << "min safe reduction (worst condition)";
    EXPECT_NEAR(hi, 0.54, 0.015) << "max safe reduction (best condition)";
}

TEST_F(Anchors, WorstConditionStillAllowsFortyPercent)
{
    const OperatingPoint worst{2.0, 12.0, 85.0};
    EXPECT_GE(model_.maxSafePreReduction(worst), 0.40);
}

// ----- Figure 4(b): drastic RBER drop in the final step -----

TEST_F(Anchors, NextToLastStepAlwaysFails)
{
    // Fig. 4(b): RBER "drastically decreases in the final retry
    // step"; the N-1 step must still exceed the ECC capability,
    // otherwise the walk would have stopped there.
    const OperatingPoint op{1.0, 6.0, 85.0};
    for (int p = 0; p < 500; ++p) {
        const PageErrorProfile prof = model_.pageProfile(0, 0, p, op);
        if (prof.retrySteps == 0)
            continue;
        EXPECT_GT(model_.stepErrors(prof, prof.retrySteps - 1), 72.0)
            << "page " << p;
        EXPECT_LE(model_.stepErrors(prof, prof.retrySteps), 72.0)
            << "page " << p;
    }
}

} // namespace
} // namespace ssdrr::nand

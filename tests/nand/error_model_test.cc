/**
 * @file
 * Behavioural and property tests for the NAND error model beyond the
 * paper's numeric anchors (those live in error_model_anchor_test.cc).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "nand/error_model.hh"

namespace ssdrr::nand {
namespace {

TEST(ErrorModel, ProfilesAreDeterministicPerCoordinates)
{
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 55.0};
    const PageErrorProfile a = m.pageProfile(2, 30, 7, op);
    const PageErrorProfile b = m.pageProfile(2, 30, 7, op);
    EXPECT_EQ(a.retrySteps, b.retrySteps);
    EXPECT_DOUBLE_EQ(a.finalErrors, b.finalErrors);
    EXPECT_DOUBLE_EQ(a.decayRatio, b.decayRatio);
}

TEST(ErrorModel, DifferentPagesDiffer)
{
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 85.0};
    int distinct = 0;
    const PageErrorProfile first = m.pageProfile(0, 0, 0, op);
    for (int p = 1; p < 50; ++p) {
        const PageErrorProfile prof = m.pageProfile(0, 0, p, op);
        if (prof.retrySteps != first.retrySteps ||
            prof.finalErrors != first.finalErrors)
            ++distinct;
    }
    EXPECT_GT(distinct, 40) << "process variation must differentiate pages";
}

TEST(ErrorModel, DifferentSeedsGiveDifferentPopulations)
{
    const ErrorModel m1(Calibration{}, 1);
    const ErrorModel m2(Calibration{}, 2);
    const OperatingPoint op{1.0, 6.0, 85.0};
    int distinct = 0;
    for (int p = 0; p < 50; ++p) {
        if (m1.pageProfile(0, 0, p, op).retrySteps !=
            m2.pageProfile(0, 0, p, op).retrySteps)
            ++distinct;
    }
    EXPECT_GT(distinct, 10);
}

TEST(ErrorModel, RetryStepsClampToTableSize)
{
    const ErrorModel m;
    // An absurdly aged condition cannot exceed the retry table.
    const OperatingPoint op{3.0, 12.0, 85.0};
    for (int p = 0; p < 200; ++p) {
        const PageErrorProfile prof = m.pageProfile(0, 0, p, op);
        EXPECT_LE(prof.retrySteps, m.cal().retryTableSteps);
        EXPECT_GE(prof.retrySteps, 0);
    }
}

TEST(ErrorModel, FinalErrorsBoundedByMax)
{
    const ErrorModel m;
    const OperatingPoint op{2.0, 12.0, 30.0};
    const double cap = m.finalErrorsMax(op);
    for (int p = 0; p < 500; ++p) {
        const PageErrorProfile prof = m.pageProfile(0, p / 64, p % 64, op);
        EXPECT_LE(prof.finalErrors, cap);
        EXPECT_GT(prof.finalErrors, 0.0);
    }
}

TEST(ErrorModel, StepErrorsDecayTowardFinal)
{
    // Errors saturate at a 50% RBER (4096/KiB) far from VOPT, then
    // decay strictly monotonically once below the saturation cap.
    constexpr double kSaturation = 4096.0;
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 85.0};
    const PageErrorProfile prof = m.pageProfile(0, 0, 3, op);
    ASSERT_GT(prof.retrySteps, 1);
    for (int k = 1; k <= prof.retrySteps; ++k) {
        const double prev = m.stepErrors(prof, k - 1);
        const double cur = m.stepErrors(prof, k);
        EXPECT_LE(cur, prev) << "k=" << k;
        if (prev < kSaturation) {
            EXPECT_LT(cur, prev)
                << "strict decay below saturation, k=" << k;
        }
    }
    // The last two steps are always below saturation (the walk is
    // about to succeed), so strict decay is guaranteed there.
    EXPECT_LT(m.stepErrors(prof, prof.retrySteps),
              m.stepErrors(prof, prof.retrySteps - 1));
}

TEST(ErrorModel, OvershootGrowsAgain)
{
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 85.0};
    const PageErrorProfile prof = m.pageProfile(0, 0, 3, op);
    const int n = prof.retrySteps;
    EXPECT_GT(m.stepErrors(prof, n + 1), m.stepErrors(prof, n));
    EXPECT_GT(m.stepErrors(prof, n + 2), m.stepErrors(prof, n + 1));
}

TEST(ErrorModel, ExtraErrorsShiftEveryStep)
{
    constexpr double kSaturation = 4096.0;
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 85.0};
    const PageErrorProfile prof = m.pageProfile(0, 0, 3, op);
    int checked = 0;
    for (int k = 0; k <= prof.retrySteps + 1; ++k) {
        const double base = m.stepErrors(prof, k);
        if (base + 10.0 >= kSaturation)
            continue; // additivity clips at the saturation cap
        EXPECT_NEAR(m.stepErrors(prof, k, 10.0), base + 10.0, 1e-9)
            << "extra errors are additive below the cap, k=" << k;
        ++checked;
    }
    EXPECT_GE(checked, 2) << "at least the final steps are testable";
}

TEST(ErrorModel, SimulateReadMatchesProfileWithoutReduction)
{
    const ErrorModel m;
    const OperatingPoint op{1.0, 3.0, 85.0};
    for (int p = 0; p < 200; ++p) {
        const PageErrorProfile prof = m.pageProfile(0, 1, p, op);
        const ReadOutcome out = m.simulateRead(prof);
        EXPECT_TRUE(out.success);
        EXPECT_EQ(out.retrySteps, prof.retrySteps)
            << "default timing must need exactly the profiled steps";
        EXPECT_LE(out.lastStepErrors, m.cal().eccCapability);
    }
}

TEST(ErrorModel, SmallExtraErrorsKeepStepCount)
{
    // The AR2 premise: if finalErrors + dM <= capability, the same
    // number of steps still succeeds.
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 85.0};
    const PageErrorProfile prof = m.pageProfile(0, 2, 5, op);
    const double slack = m.cal().eccCapability - prof.finalErrors;
    ASSERT_GT(slack, 1.0);
    const ReadOutcome out = m.simulateRead(prof, slack * 0.5);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.retrySteps, prof.retrySteps);
}

TEST(ErrorModel, ExcessiveExtraErrorsFailTheWalk)
{
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 85.0};
    const PageErrorProfile prof = m.pageProfile(0, 2, 5, op);
    // More extra errors than the capability minus the floor: no step
    // can ever succeed.
    const ReadOutcome out =
        m.simulateRead(prof, m.cal().eccCapability + 1.0);
    EXPECT_FALSE(out.success);
    EXPECT_EQ(out.retrySteps, m.cal().retryTableSteps);
}

TEST(ErrorModel, CustomCapabilityThreshold)
{
    const ErrorModel m;
    const OperatingPoint op{1.0, 6.0, 85.0};
    const PageErrorProfile prof = m.pageProfile(0, 2, 5, op);
    // With an enormous capability the first read always succeeds.
    const ReadOutcome out = m.simulateRead(prof, 0.0, 1e9);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.retrySteps, 0);
}

TEST(ErrorModel, InvalidOperatingPointPanics)
{
    const ErrorModel m;
    EXPECT_THROW(m.meanRetrySteps({-1.0, 0.0, 85.0}), std::logic_error);
    EXPECT_THROW(m.finalErrorsMax({0.0, -1.0, 85.0}), std::logic_error);
    EXPECT_THROW(m.pageProfile(0, 0, 0, {0.0, 0.0, 300.0}),
                 std::logic_error);
}

TEST(ErrorModel, InvalidReductionPanics)
{
    const ErrorModel m;
    TimingReduction bad;
    bad.pre = 1.5;
    EXPECT_THROW(m.deltaErrors(bad, OperatingPoint{}), std::logic_error);
}

TEST(ErrorModel, StepErrorsRejectsNegativeStep)
{
    const ErrorModel m;
    const PageErrorProfile prof =
        m.pageProfile(0, 0, 0, OperatingPoint{1.0, 6.0, 85.0});
    EXPECT_THROW(m.stepErrors(prof, -1), std::logic_error);
}

/**
 * Property sweep: the three characterization surfaces must be
 * monotone in P/E cycles and retention age, across the paper's whole
 * evaluated grid. (Worse conditions never improve anything.)
 */
class SurfaceMonotonicity
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
  protected:
    ErrorModel model_;
};

TEST_P(SurfaceMonotonicity, WorsePecNeverImproves)
{
    const auto [pe, ret] = GetParam();
    const OperatingPoint op{pe, ret, 85.0};
    const OperatingPoint worse{pe + 0.5, ret, 85.0};
    EXPECT_GE(model_.meanRetrySteps(worse), model_.meanRetrySteps(op));
    EXPECT_GE(model_.finalErrorsMax(worse), model_.finalErrorsMax(op));
    TimingReduction red;
    red.pre = 0.40;
    EXPECT_GE(model_.deltaErrors(red, worse), model_.deltaErrors(red, op));
    EXPECT_LE(model_.maxSafePreReduction(worse),
              model_.maxSafePreReduction(op));
}

TEST_P(SurfaceMonotonicity, LongerRetentionNeverImproves)
{
    const auto [pe, ret] = GetParam();
    const OperatingPoint op{pe, ret, 85.0};
    const OperatingPoint worse{pe, ret + 2.0, 85.0};
    EXPECT_GE(model_.meanRetrySteps(worse), model_.meanRetrySteps(op));
    EXPECT_GE(model_.finalErrorsMax(worse), model_.finalErrorsMax(op));
    TimingReduction red;
    red.pre = 0.40;
    EXPECT_GE(model_.deltaErrors(red, worse), model_.deltaErrors(red, op));
    EXPECT_LE(model_.maxSafePreReduction(worse),
              model_.maxSafePreReduction(op));
}

TEST_P(SurfaceMonotonicity, DeltaErrorsMonotoneInReduction)
{
    const auto [pe, ret] = GetParam();
    const OperatingPoint op{pe, ret, 85.0};
    double prev = 0.0;
    for (double x = 0.05; x < 0.6; x += 0.05) {
        TimingReduction red;
        red.pre = x;
        const double d = model_.deltaErrors(red, op);
        EXPECT_GE(d, prev) << "x=" << x;
        prev = d;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SurfaceMonotonicity,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0),
                       ::testing::Values(0.0, 1.0, 3.0, 6.0, 9.0, 12.0)));

/**
 * Property: for any operating point, the RPT-profiled reduction is
 * actually safe for the page population it covers (the AR2 design
 * invariant: no step-count inflation with the profiled reduction).
 */
class ProfiledReductionSafety
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
  protected:
    ErrorModel model_;
};

TEST_P(ProfiledReductionSafety, ReducedWalkKeepsStepCount)
{
    const auto [pe, ret, temp] = GetParam();
    const OperatingPoint op{pe, ret, temp};
    const double x = model_.maxSafePreReduction(op);
    if (x == 0.0)
        GTEST_SKIP() << "no safe reduction at this point";
    TimingReduction red;
    red.pre = x;
    const double extra = model_.deltaErrors(red, op);
    int inflated = 0;
    for (int p = 0; p < 800; ++p) {
        const PageErrorProfile prof =
            model_.pageProfile(0, p / 64, p % 64, op);
        const ReadOutcome out = model_.simulateRead(prof, extra);
        EXPECT_TRUE(out.success);
        if (out.retrySteps != prof.retrySteps)
            ++inflated;
    }
    // The 14-bit safety margin absorbs temperature + outliers: the
    // profiled reduction must essentially never add steps.
    EXPECT_EQ(inflated, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProfiledReductionSafety,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.0),
                       ::testing::Values(0.0, 3.0, 12.0),
                       ::testing::Values(30.0, 55.0, 85.0)));

} // namespace
} // namespace ssdrr::nand

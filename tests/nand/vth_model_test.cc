/**
 * @file
 * Tests for the physical threshold-voltage distribution model
 * (Figure 3(b), Figure 4(a) behaviour).
 */

#include <gtest/gtest.h>

#include <set>

#include "nand/vth_model.hh"

namespace ssdrr::nand {
namespace {

TEST(VthModel, EightStatesOrderedByVoltage)
{
    const VthModel m;
    for (int s = 1; s < VthModel::kStates; ++s)
        EXPECT_GT(m.stateMean(s), m.stateMean(s - 1))
            << "state means must increase with level";
}

TEST(VthModel, ErasedStateIsNegativeAndWide)
{
    const VthModel m;
    EXPECT_LT(m.stateMean(0), 0.0);
    for (int s = 1; s < VthModel::kStates; ++s)
        EXPECT_GT(m.stateSigma(0), m.stateSigma(s))
            << "erased distribution is wider than programmed states";
}

TEST(VthModel, GrayCodeAdjacentStatesDifferInOneBit)
{
    // Figure 3(b)'s encoding must be a true Gray code: exactly one
    // page type flips between adjacent VTH states, so one misread
    // cell corrupts exactly one page.
    for (int s = 0; s + 1 < VthModel::kStates; ++s) {
        const int diff =
            VthModel::kGrayCode[s] ^ VthModel::kGrayCode[s + 1];
        EXPECT_EQ(__builtin_popcount(diff), 1)
            << "states " << s << " and " << s + 1;
    }
}

TEST(VthModel, GrayCodeIsAPermutation)
{
    std::set<std::uint8_t> codes(VthModel::kGrayCode.begin(),
                                 VthModel::kGrayCode.end());
    EXPECT_EQ(codes.size(), 8u);
    for (std::uint8_t c : codes)
        EXPECT_LT(c, 8);
}

TEST(VthModel, ErasedStateIsAllOnes)
{
    // Erased cells read as '1' on every page (Section 2.2).
    EXPECT_EQ(VthModel::kGrayCode[0], 0b111);
}

TEST(VthModel, BoundariesPartitionByPageType)
{
    // LSB {0,4}, CSB {1,3,5}, MSB {2,6}: 7 boundaries total, each
    // sensed by exactly one page type, count matching N_SENSE.
    std::set<int> all;
    for (PageType t :
         {PageType::LSB, PageType::CSB, PageType::MSB}) {
        const auto &bs = VthModel::boundariesOf(t);
        EXPECT_EQ(static_cast<int>(bs.size()), nSense(t))
            << pageTypeName(t);
        for (int b : bs)
            EXPECT_TRUE(all.insert(b).second)
                << "boundary " << b << " claimed twice";
    }
    EXPECT_EQ(all.size(), 7u);
}

TEST(VthModel, BoundariesMatchGrayBitFlips)
{
    // Boundary b belongs to page type t iff bit t flips between
    // states b and b+1.
    for (PageType t :
         {PageType::LSB, PageType::CSB, PageType::MSB}) {
        for (int b = 0; b < VthModel::kBoundaries; ++b) {
            const bool flips = VthModel::bitOf(t, b) !=
                               VthModel::bitOf(t, b + 1);
            const auto &bs = VthModel::boundariesOf(t);
            const bool owned =
                std::find(bs.begin(), bs.end(), b) != bs.end();
            EXPECT_EQ(flips, owned)
                << pageTypeName(t) << " boundary " << b;
        }
    }
}

TEST(VthModel, FreshPageHasNegligibleRber)
{
    // Even fresh distributions overlap slightly (Section 5.1: "two
    // adjacent VTH states slightly overlap even right after
    // programming"); the RBER must stay far below the 72/8192
    // (0.9%) ECC capability so fresh pages never retry.
    const VthModel fresh;
    for (PageType t :
         {PageType::LSB, PageType::CSB, PageType::MSB}) {
        EXPECT_GT(fresh.pageRber(t, 0.0), 0.0)
            << pageTypeName(t) << ": no VREF achieves zero RBER";
        EXPECT_LT(fresh.pageRber(t, 0.0), 1e-3)
            << pageTypeName(t) << " at default VREF";
    }
}

TEST(VthModel, AgingShiftsProgrammedStatesDown)
{
    VthModel aged;
    const VthModel fresh;
    aged.age({1.0, 12.0, 30.0});
    for (int s = 1; s < VthModel::kStates; ++s) {
        EXPECT_LT(aged.stateMean(s), fresh.stateMean(s))
            << "retention loss lowers VTH of state " << s;
        EXPECT_GT(aged.stateSigma(s), fresh.stateSigma(s))
            << "aging widens state " << s;
    }
}

TEST(VthModel, HigherStatesShiftMore)
{
    // Retention loss is proportional to stored charge (Section 2.3):
    // P7 leaks more than P1.
    VthModel aged;
    const VthModel fresh;
    aged.age({0.0, 12.0, 30.0});
    const double d1 = fresh.stateMean(1) - aged.stateMean(1);
    const double d7 = fresh.stateMean(7) - aged.stateMean(7);
    EXPECT_GT(d7, d1);
}

TEST(VthModel, AgingRaisesRberAtDefaultVref)
{
    VthModel aged;
    aged.age({1.0, 6.0, 30.0});
    const VthModel fresh;
    for (PageType t :
         {PageType::LSB, PageType::CSB, PageType::MSB}) {
        EXPECT_GT(aged.pageRber(t, 0.0), 10.0 * fresh.pageRber(t, 0.0))
            << pageTypeName(t);
    }
}

TEST(VthModel, OptimalVrefBeatsDefaultOnAgedPage)
{
    VthModel aged;
    aged.age({1.0, 12.0, 30.0});
    for (PageType t :
         {PageType::LSB, PageType::CSB, PageType::MSB}) {
        EXPECT_LT(aged.pageRberAtOpt(t), aged.pageRber(t, 0.0))
            << pageTypeName(t)
            << ": VOPT must reduce RBER (Figure 4(a))";
    }
}

TEST(VthModel, OptimalVrefLiesBelowDefaultAfterRetention)
{
    // Retention shifts the programmed states down, so VOPT of every
    // boundary between programmed states drops below the default
    // VREF — the reason retry tables walk downward. (Boundary 0 sits
    // against the wide erased state, whose asymmetric sigma places
    // its optimum off the midpoint in the other direction.)
    VthModel aged;
    aged.age({1.0, 12.0, 30.0});
    for (int b = 1; b < VthModel::kBoundaries; ++b)
        EXPECT_LT(aged.optimalVref(b), aged.defaultVref(b))
            << "boundary " << b;
    // Boundary 0's optimum still lies between its adjacent states.
    EXPECT_GT(aged.optimalVref(0), aged.stateMean(0));
    EXPECT_LT(aged.optimalVref(0), aged.stateMean(1));
}

TEST(VthModel, BoundaryErrorProbIsConvexAroundOpt)
{
    VthModel aged;
    aged.age({1.0, 6.0, 30.0});
    const int b = 3;
    const double opt = aged.optimalVref(b);
    const double at_opt = aged.boundaryErrorProb(b, opt);
    EXPECT_LT(at_opt, aged.boundaryErrorProb(b, opt - 0.15));
    EXPECT_LT(at_opt, aged.boundaryErrorProb(b, opt + 0.15));
}

TEST(VthModel, MoreAgingMoreRberAtOpt)
{
    // Section 5.1: even VOPT cannot avoid RBER growth; M_ERR grows
    // with PEC and retention.
    VthModel mild, harsh;
    mild.age({0.0, 3.0, 30.0});
    harsh.age({2.0, 12.0, 30.0});
    for (PageType t :
         {PageType::LSB, PageType::CSB, PageType::MSB}) {
        EXPECT_GT(harsh.pageRberAtOpt(t), mild.pageRberAtOpt(t))
            << pageTypeName(t);
    }
}

/** Property: sweeping the VREF offset reproduces Figure 4(a)'s
 *  V-shape: monotone improvement toward VOPT, worse beyond. */
class VrefSweep : public ::testing::TestWithParam<PageType>
{
};

TEST_P(VrefSweep, RberVShapeAroundOptimalOffset)
{
    VthModel aged;
    aged.age({1.0, 9.0, 30.0});
    const PageType t = GetParam();

    double best_off = 0.0, best = aged.pageRber(t, 0.0);
    for (double off = -0.5; off <= 0.1; off += 0.01) {
        const double r = aged.pageRber(t, off);
        if (r < best) {
            best = r;
            best_off = off;
        }
    }
    EXPECT_LT(best_off, 0.0) << "optimal offset must be negative";
    EXPECT_LT(best, aged.pageRber(t, 0.0) * 0.5)
        << "near-optimal VREF drastically decreases RBER (Fig. 4(b))";
    // Walking further past the optimum makes things worse again.
    EXPECT_GT(aged.pageRber(t, best_off - 0.25), best);
}

INSTANTIATE_TEST_SUITE_P(PageTypes, VrefSweep,
                         ::testing::Values(PageType::LSB, PageType::CSB,
                                           PageType::MSB));

} // namespace
} // namespace ssdrr::nand

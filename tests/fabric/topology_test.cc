/**
 * @file
 * Fabric topology: structural validation (every violation must name
 * the offending `fabric.*` JSON path), preset generation, compiled
 * path routing, and the scenario-JSON round trip of the `fabric`
 * object.
 */

#include <gtest/gtest.h>

#include "fabric/topology.hh"
#include "host/scenario_spec.hh"

namespace ssdrr::fabric {
namespace {

/** Two switches, two drives each — the canonical small rack. */
TopologySpec
rackSpec()
{
    TopologySpec spec;
    spec.nodes = {{"host0", "host"}, {"tor0", "switch"},
                  {"tor1", "switch"}, {"bay0", "drive"},
                  {"bay1", "drive"},  {"bay2", "drive"},
                  {"bay3", "drive"}};
    spec.links = {{"host0", "tor0", 2.0, 0.4},
                  {"host0", "tor1", 2.0, 0.4},
                  {"tor0", "bay0", 1.0, 0.05},
                  {"tor0", "bay1", 1.0, 0.05},
                  {"tor1", "bay2", 1.0, 0.05},
                  {"tor1", "bay3", 1.0, 0.05}};
    spec.drives = {"bay0", "bay1", "bay2", "bay3"};
    return spec;
}

void
expectRejects(const TopologySpec &spec, std::uint32_t drive_count,
              const std::string &needle)
{
    try {
        spec.validate(drive_count);
        FAIL() << "expected rejection containing: " << needle;
    } catch (const TopologyError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(FabricTopology, ValidSpecPasses)
{
    EXPECT_NO_THROW(rackSpec().validate(4));
}

TEST(FabricTopology, RejectsEmptyObject)
{
    expectRejects(TopologySpec{}, 4, "fabric: empty object");
}

TEST(FabricTopology, RejectsBadNodesNamingThePath)
{
    TopologySpec s = rackSpec();
    s.nodes[2].name = "";
    expectRejects(s, 4, "fabric.nodes[2].name: must not be empty");

    s = rackSpec();
    s.nodes[1].kind = "router";
    expectRejects(s, 4,
                  "fabric.nodes[1].kind: unknown kind \"router\"");

    s = rackSpec();
    s.nodes[4].name = "bay0";
    expectRejects(s, 4, "fabric.nodes[4].name: duplicate node name "
                        "\"bay0\"");

    s = rackSpec();
    s.nodes[2].kind = "host";
    expectRejects(s, 4, "fabric.nodes[2].kind: second \"host\" node");

    s = rackSpec();
    s.nodes[0].kind = "switch";
    expectRejects(s, 4, "fabric.nodes: no node of kind \"host\"");
}

TEST(FabricTopology, RejectsBadLinksNamingThePath)
{
    TopologySpec s = rackSpec();
    s.links[3].to = "bay9";
    expectRejects(s, 4, "fabric.links[3].to: unknown node \"bay9\"");

    s = rackSpec();
    s.links[0].from = "ghost";
    expectRejects(s, 4,
                  "fabric.links[0].from: unknown node \"ghost\"");

    s = rackSpec();
    s.links[1].to = "host0";
    expectRejects(s, 4, "fabric.links[1]: self-loop");

    s = rackSpec();
    s.links[2].latencyUs = 0.0;
    expectRejects(s, 4, "fabric.links[2].latencyUs: must be > 0");

    s = rackSpec();
    s.links[2].latencyUs = 0.0004; // < 1 tick
    expectRejects(s, 4, "rounds to zero ticks");

    s = rackSpec();
    s.links[5].usPerKb = -0.1;
    expectRejects(s, 4, "fabric.links[5].usPerKb: must be >= 0");

    s = rackSpec();
    s.links.push_back({"tor1", "bay0", 1.0, 0.0});
    expectRejects(s, 4, "fabric.links[6]: link \"tor1\" -> \"bay0\" "
                        "creates a cycle");
}

TEST(FabricTopology, RejectsUnreachableDrive)
{
    TopologySpec s = rackSpec();
    s.links.pop_back(); // orphan bay3
    expectRejects(s, 4, "fabric.nodes[6]: drive node \"bay3\" is "
                        "unreachable from the host \"host0\"");
}

TEST(FabricTopology, RejectsBadDriveAttachment)
{
    TopologySpec s = rackSpec();
    s.drives.pop_back();
    expectRejects(s, 4, "fabric.drives: 3 attachment entries for an "
                        "array of 4 drives");

    s = rackSpec();
    s.drives[1] = "bay9";
    expectRejects(s, 4, "fabric.drives[1]: unknown node \"bay9\"");

    s = rackSpec();
    s.drives[2] = "tor0";
    expectRejects(s, 4, "fabric.drives[2]: node \"tor0\" has kind "
                        "\"switch\" (must be \"drive\")");

    s = rackSpec();
    s.drives[3] = "bay0";
    expectRejects(s, 4, "fabric.drives[3]: node \"bay0\" attached to "
                        "more than one drive");

    s = rackSpec();
    s.nodes.push_back({"spare", "drive"});
    s.links.push_back({"tor1", "spare", 1.0, 0.0});
    expectRejects(s, 4, "fabric.nodes[7]: drive node \"spare\" is "
                        "not mapped to any array drive");
}

TEST(FabricTopology, FlatPresetLinksEveryDriveToTheHost)
{
    const TopologySpec s = makePreset("flat", 3);
    EXPECT_NO_THROW(s.validate(3));
    ASSERT_EQ(s.nodes.size(), 4u);
    EXPECT_EQ(s.nodes[0].kind, "host");
    ASSERT_EQ(s.links.size(), 3u);
    for (const LinkSpec &l : s.links)
        EXPECT_EQ(l.from, "host0");
    EXPECT_EQ(s.drives,
              (std::vector<std::string>{"d0", "d1", "d2"}));
}

TEST(FabricTopology, TreePresetBuildsSwitchTiers)
{
    const TopologySpec s = makePreset("tree:2x4", 8);
    EXPECT_NO_THROW(s.validate(8));
    // 1 host + 2 switches + 8 drives; 2 uplinks + 8 downlinks.
    EXPECT_EQ(s.nodes.size(), 11u);
    EXPECT_EQ(s.links.size(), 10u);
    const Topology t = Topology::compile(s, 8);
    EXPECT_EQ(t.switchNodes().size(), 2u);
    EXPECT_EQ(t.pathNames(0),
              (std::vector<std::string>{"host0", "sw0", "d0"}));
    EXPECT_EQ(t.pathNames(7),
              (std::vector<std::string>{"host0", "sw1", "d7"}));
}

TEST(FabricTopology, PresetErrorsNameThePreset)
{
    try {
        makePreset("tree:2x3", 4);
        FAIL() << "expected drive-count mismatch";
    } catch (const TopologyError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "describes 6 drives but the array has 4"),
                  std::string::npos);
    }
    EXPECT_THROW(makePreset("tree:0x4", 0), TopologyError);
    EXPECT_THROW(makePreset("tree:abc", 4), TopologyError);
    EXPECT_THROW(makePreset("mesh", 4), TopologyError);
}

TEST(FabricTopology, CompileRoutesUniquePaths)
{
    const Topology t = Topology::compile(rackSpec(), 4);
    EXPECT_EQ(t.pathCount(), 4u);
    EXPECT_EQ(t.pathNames(0),
              (std::vector<std::string>{"host0", "tor0", "bay0"}));
    EXPECT_EQ(t.pathNames(3),
              (std::vector<std::string>{"host0", "tor1", "bay3"}));
    // Each hop's link label honors the traversal direction.
    const auto &path = t.pathTo(2);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(t.linkName(path[0].link, path[0].forward),
              "host0->tor1");
    EXPECT_EQ(t.linkName(path[1].link, path[1].forward),
              "tor1->bay2");
    EXPECT_EQ(t.linkName(path[1].link, !path[1].forward),
              "bay2->tor1");
}

TEST(FabricTopology, MinLinkLatencyIsTheWindowWidth)
{
    const Topology t = Topology::compile(rackSpec(), 4);
    // Cheapest link is 1 us; the rack's uplinks are 2 us.
    EXPECT_EQ(t.minLinkLatency(), sim::usec(1.0));
}

TEST(FabricTopology, ScenarioJsonRoundTripsTheFabricObject)
{
    host::ScenarioSpec spec =
        host::ScenarioBuilder()
            .geometry("small")
            .drives(4)
            .mechanism(core::Mechanism::Baseline)
            .tenant("t", "usr_1", 50)
            .fabric(rackSpec())
            .build();
    const host::ScenarioSpec back =
        host::ScenarioSpec::fromJsonText(spec.toJsonText());
    EXPECT_TRUE(back == spec);
    EXPECT_TRUE(back.fabric == rackSpec());
}

TEST(FabricTopology, ScenarioRejectsFabricWithHostLink)
{
    host::ScenarioBuilder b;
    b.geometry("small")
        .drives(4)
        .hostLinkUs(10.0)
        .mechanism(core::Mechanism::Baseline)
        .tenant("t", "usr_1", 50)
        .fabric(rackSpec());
    try {
        b.build();
        FAIL() << "expected hostLinkUs/fabric conflict";
    } catch (const host::SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("host.hostLinkUs"),
                  std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(FabricTopology, ScenarioSurfacesTopologyErrorsAsSpecErrors)
{
    host::ScenarioBuilder b;
    TopologySpec bad = rackSpec();
    bad.links[3].to = "bay9";
    b.geometry("small")
        .drives(4)
        .mechanism(core::Mechanism::Baseline)
        .tenant("t", "usr_1", 50)
        .fabric(bad);
    try {
        b.build();
        FAIL() << "expected fabric.links[3].to rejection";
    } catch (const host::SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("fabric.links[3].to"),
                  std::string::npos)
            << "message was: " << e.what();
    }
}

} // namespace
} // namespace ssdrr::fabric

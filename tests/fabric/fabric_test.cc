/**
 * @file
 * Runtime fabric transport: per-hop delivery time (serialization +
 * propagation), FIFO contention on a shared hop, full-duplex
 * independence of the two link directions, and the per-link
 * accounting surfaced through linkReports().
 *
 * The Fabric is driven standalone here — a ParallelExecutor, a host
 * queue, and per-drive queues wired exactly as host::SsdArray wires
 * them — so the math is checked tick-for-tick without a whole SSD
 * behind it.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fabric/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_executor.hh"

namespace ssdrr::fabric {
namespace {

/** Fabric + executor + queues wired like host::SsdArray does it. */
struct Rig {
    sim::EventQueue hostQ;
    std::vector<std::unique_ptr<sim::EventQueue>> driveQs;
    std::unique_ptr<sim::ParallelExecutor> exec;
    std::unique_ptr<Fabric> fab;

    explicit Rig(const TopologySpec &spec, std::uint32_t drives)
    {
        Topology topo = Topology::compile(spec, drives);
        exec = std::make_unique<sim::ParallelExecutor>(
            topo.minLinkLatency(), 1);
        const auto host_dom = exec->addDomain(hostQ);
        fab = std::make_unique<Fabric>(std::move(topo), *exec,
                                       host_dom, hostQ);
        for (std::uint32_t d = 0; d < drives; ++d) {
            driveQs.push_back(std::make_unique<sim::EventQueue>());
            fab->attachDrive(d, exec->addDomain(*driveQs[d]),
                             *driveQs[d]);
        }
    }
};

/** One drive behind one direct link: 5 us latency, 2 us per KiB. */
TopologySpec
directLink()
{
    TopologySpec spec;
    spec.nodes = {{"h", "host"}, {"d", "drive"}};
    spec.links = {{"h", "d", 5.0, 2.0}};
    spec.drives = {"d"};
    return spec;
}

TEST(Fabric, HopChargesSerializationPlusPropagation)
{
    Rig rig(directLink(), 1);
    sim::Tick arrived = 0;
    // 2 KiB at 2 us/KiB = 4 us serialization, then 5 us propagation.
    rig.hostQ.schedule(sim::usec(10.0), [&] {
        rig.fab->toDrive(0, 2048, /*read=*/false,
                         [&] { arrived = rig.driveQs[0]->now(); });
    });
    rig.exec->run();
    EXPECT_EQ(arrived, sim::usec(19.0));

    const std::vector<LinkReport> reports = rig.fab->linkReports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].link, "h<->d");
    EXPECT_EQ(reports[0].messages, 1u);
    EXPECT_EQ(reports[0].bytesCarried, 2048u);
    EXPECT_DOUBLE_EQ(reports[0].busyUs, 4.0);
    EXPECT_DOUBLE_EQ(reports[0].waitUs, 0.0);
    EXPECT_EQ(reports[0].maxQueueDepth, 1u);
}

TEST(Fabric, CommandOnlyCrossingCostsOnlyPropagation)
{
    Rig rig(directLink(), 1);
    sim::Tick arrived = 0;
    rig.hostQ.schedule(sim::usec(10.0), [&] {
        rig.fab->toDrive(0, 0, /*read=*/true,
                         [&] { arrived = rig.driveQs[0]->now(); });
    });
    rig.exec->run();
    EXPECT_EQ(arrived, sim::usec(15.0));
    EXPECT_DOUBLE_EQ(rig.fab->linkReports()[0].busyUs, 0.0);
}

TEST(Fabric, ConcurrentMessagesSerializeFifoOnASharedHop)
{
    Rig rig(directLink(), 1);
    std::vector<sim::Tick> arrivals;
    // Two 2-KiB messages sent back to back at the same tick: the
    // second queues behind the first's 4 us serialization.
    rig.hostQ.schedule(sim::usec(10.0), [&] {
        rig.fab->toDrive(0, 2048, true, [&] {
            arrivals.push_back(rig.driveQs[0]->now());
        });
        rig.fab->toDrive(0, 2048, true, [&] {
            arrivals.push_back(rig.driveQs[0]->now());
        });
    });
    rig.exec->run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], sim::usec(19.0)); // 10 + 4 + 5
    EXPECT_EQ(arrivals[1], sim::usec(23.0)); // 10 + 4 + 4 + 5

    const LinkReport r = rig.fab->linkReports()[0];
    EXPECT_EQ(r.messages, 2u);
    EXPECT_EQ(r.bytesCarried, 4096u);
    EXPECT_DOUBLE_EQ(r.busyUs, 8.0);
    EXPECT_DOUBLE_EQ(r.waitUs, 4.0); // the second message's queueing
    EXPECT_EQ(r.maxQueueDepth, 2u);
    // Both messages were read-tagged, so the read-wait total is the
    // same 4 us the FIFO charged.
    EXPECT_EQ(rig.fab->readWaitTicks(), sim::usec(4.0));
}

TEST(Fabric, LinkDirectionsAreFullDuplex)
{
    Rig rig(directLink(), 1);
    sim::Tick down_arrived = 0, up_arrived = 0;
    // A downstream transfer and an upstream transfer in flight at
    // once: opposite directions keep independent FIFO state, so
    // neither queues behind the other.
    rig.hostQ.schedule(sim::usec(10.0), [&] {
        rig.fab->toDrive(0, 2048, false,
                         [&] { down_arrived = rig.driveQs[0]->now(); });
    });
    rig.driveQs[0]->schedule(sim::usec(10.0), [&] {
        rig.fab->toHost(0, 2048, true,
                        [&] { up_arrived = rig.hostQ.now(); });
    });
    rig.exec->run();
    EXPECT_EQ(down_arrived, sim::usec(19.0));
    EXPECT_EQ(up_arrived, sim::usec(19.0));
    // linkReports merges both directions.
    const LinkReport r = rig.fab->linkReports()[0];
    EXPECT_EQ(r.messages, 2u);
    EXPECT_DOUBLE_EQ(r.waitUs, 0.0);
}

TEST(Fabric, SharedUplinkContendsWhileLeafLinksDoNot)
{
    // One switch fronting two drives: messages to different drives
    // share the host->switch uplink, then fan out contention-free.
    TopologySpec spec;
    spec.nodes = {{"h", "host"}, {"sw", "switch"},
                  {"d0", "drive"}, {"d1", "drive"}};
    spec.links = {{"h", "sw", 5.0, 2.0},
                  {"sw", "d0", 1.0, 0.0},
                  {"sw", "d1", 1.0, 0.0}};
    spec.drives = {"d0", "d1"};
    Rig rig(spec, 2);
    sim::Tick a0 = 0, a1 = 0;
    rig.hostQ.schedule(sim::usec(10.0), [&] {
        rig.fab->toDrive(0, 2048, true,
                         [&] { a0 = rig.driveQs[0]->now(); });
        rig.fab->toDrive(1, 2048, true,
                         [&] { a1 = rig.driveQs[1]->now(); });
    });
    rig.exec->run();
    // d0: 10 + (4 ser + 5 lat) + (0 ser + 1 lat) = 20.
    EXPECT_EQ(a0, sim::usec(20.0));
    // d1 queued 4 us behind d0 on the uplink: 24.
    EXPECT_EQ(a1, sim::usec(24.0));

    const std::vector<LinkReport> reports = rig.fab->linkReports();
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_DOUBLE_EQ(reports[0].waitUs, 4.0); // h<->sw uplink
    EXPECT_DOUBLE_EQ(reports[1].waitUs, 0.0); // sw<->d0
    EXPECT_DOUBLE_EQ(reports[2].waitUs, 0.0); // sw<->d1
    EXPECT_EQ(reports[1].messages, 1u);
    EXPECT_EQ(reports[2].messages, 1u);
}

TEST(Fabric, SwitchEventsAreAccounted)
{
    TopologySpec spec;
    spec.nodes = {{"h", "host"}, {"sw", "switch"}, {"d", "drive"}};
    spec.links = {{"h", "sw", 1.0, 0.0}, {"sw", "d", 1.0, 0.0}};
    spec.drives = {"d"};
    Rig rig(spec, 1);
    bool arrived = false;
    rig.hostQ.schedule(sim::usec(1.0), [&] {
        rig.fab->toDrive(0, 0, false, [&] { arrived = true; });
    });
    rig.exec->run();
    EXPECT_TRUE(arrived);
    // The switch forwarded exactly one message.
    EXPECT_EQ(rig.fab->switchExecutedEvents(), 1u);
}

} // namespace
} // namespace ssdrr::fabric

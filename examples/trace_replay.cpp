/**
 * @file
 * Replay a real MSR-Cambridge block I/O trace (CSV) against the
 * simulated SSD under a chosen mechanism and operating point.
 *
 * Usage:
 *   trace_replay <trace.csv> [mechanism] [peKilo] [retentionMonths]
 *
 * Without arguments, the example writes a small demo CSV to /tmp,
 * parses it back, and replays it - demonstrating the full
 * file-to-results path for users who have the original traces [76].
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "ssd/ssd.hh"
#include "workload/msr_parser.hh"

using namespace ssdrr;

namespace {

std::string
writeDemoTrace()
{
    const std::string path = "/tmp/ssdrr_demo_trace.csv";
    std::ofstream out(path);
    // Timestamp (100ns filetime), host, disk, type, offset, size, rt.
    std::uint64_t ts = 128166372003061629ull;
    for (int i = 0; i < 400; ++i) {
        const bool read = i % 5 != 0; // 80% reads
        const std::uint64_t offset =
            static_cast<std::uint64_t>((i * 7919) % 4096) * 16384;
        out << ts << ",demo,0," << (read ? "Read" : "Write") << ","
            << offset << "," << 16384 * (1 + i % 3) << ",0\n";
        ts += 5000 + (i % 7) * 2500; // 0.5-2.25 ms gaps
    }
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : writeDemoTrace();
    const core::Mechanism mech =
        argc > 2 ? core::parseMechanism(argv[2]) : core::Mechanism::PnAR2;

    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = argc > 3 ? std::atof(argv[3]) : 1.0;
    cfg.baseRetentionMonths = argc > 4 ? std::atof(argv[4]) : 6.0;

    workload::MsrParseOptions opt;
    opt.pageBytes = cfg.pageBytes;
    opt.maxRecords = 200000; // bound memory on week-long traces
    workload::Trace trace = workload::loadMsrTrace(path, opt);
    if (trace.empty()) {
        std::fprintf(stderr, "trace %s parsed to zero records\n",
                     path.c_str());
        return 1;
    }

    // Fold the trace's LPNs into the simulated SSD's logical space.
    const std::uint64_t space = cfg.logicalPages();
    std::vector<workload::TraceRecord> recs = trace.records();
    for (auto &r : recs) {
        r.lpn %= space;
        if (r.lpn + r.pages > space)
            r.lpn = space - r.pages;
    }
    trace = workload::Trace(trace.name(), std::move(recs));

    std::printf("trace %s: %zu records, read ratio %.2f, cold ratio "
                "%.2f, %.1f s span\n",
                trace.name().c_str(), trace.size(), trace.readRatio(),
                trace.coldRatio(),
                sim::toMsec(trace.duration()) / 1000.0);

    ssd::Ssd base(cfg, core::Mechanism::Baseline);
    ssd::Ssd opt_ssd(cfg, mech);
    const ssd::RunStats sb = base.replay(trace);
    const ssd::RunStats so = opt_ssd.replay(trace);

    std::printf("\n%-12s %12s %12s %12s %12s\n", "mechanism", "avg[us]",
                "p99[us]", "steps", "suspends");
    std::printf("%-12s %12.1f %12.1f %12.2f %12llu\n", "Baseline",
                sb.avgResponseUs, sb.p99ResponseUs, sb.avgRetrySteps,
                static_cast<unsigned long long>(sb.suspensions));
    std::printf("%-12s %12.1f %12.1f %12.2f %12llu\n", core::name(mech),
                so.avgResponseUs, so.p99ResponseUs, so.avgRetrySteps,
                static_cast<unsigned long long>(so.suspensions));
    std::printf("\n%s reduces average response time by %.1f%%\n",
                core::name(mech),
                100.0 * (1.0 - so.avgResponseUs / sb.avgResponseUs));
    return 0;
}

/**
 * @file
 * Key-value-store tail latency: the paper's motivating application
 * (Section 3.2.1 cites key-value stores and graph analytics as the
 * random-read-critical workloads behind the CACHE READ extension).
 *
 * Replays a YCSB-C-like point-read workload against a mid-life SSD
 * and reports the full latency distribution (p50/p90/p99/p99.9/max)
 * per mechanism. Read-retry is a tail phenomenon: most reads hit
 * young pages, but the cold-page reads that do retry define the SLO.
 */

#include <cstdio>

#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

int
main()
{
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 6.0;

    // YCSB-C: 99% reads, Zipfian point lookups; a fraction of the
    // dataset is cold (old snapshots, infrequently-compacted levels).
    workload::SyntheticSpec spec = workload::findWorkload("YCSB-C");
    spec.coldRatio = 0.3; // hot KV working set, cold tail
    const workload::Trace trace = workload::generateSynthetic(
        spec, cfg.logicalPages(), 4000, 23);

    std::printf("YCSB-C-like point reads, %zu requests, mid-life SSD "
                "(1K P/E, 6-month cold data)\n\n",
                trace.size());
    std::printf("%-10s %8s %8s %8s %8s %8s %8s\n", "mechanism", "p50",
                "p90", "p99", "p99.9", "max", "mean");

    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PR2,
          core::Mechanism::AR2, core::Mechanism::PnAR2,
          core::Mechanism::PSO_PnAR2, core::Mechanism::NoRR}) {
        ssd::Ssd ssd(cfg, m);
        ssd.replay(trace);
        const sim::Histogram &h = ssd.readResponseTimes();
        std::printf("%-10s %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f\n",
                    core::name(m), h.percentile(50.0), h.percentile(90.0),
                    h.percentile(99.0), h.percentile(99.9),
                    h.percentile(100.0), h.mean());
    }

    std::printf("\nTakeaway (all values in us): the p99/p99.9 tail is "
                "dominated by multi-step\nread-retry on cold pages; PR2 "
                "and AR2 compress exactly that tail, which is what a\n"
                "KV store's SLO sees.\n");
    return 0;
}

/**
 * @file
 * Walkthrough of the host/array layer: two tenants with different
 * service needs sharing a two-drive striped array.
 *
 * Tenant "kv" is a latency-sensitive read-heavy cache (YCSB-C) that
 * keeps a small closed-loop window; tenant "log" is a write-heavy
 * batch writer (stg_0) that pushes a deep window. Weighted
 * round-robin arbitration (weights 3:1) protects the cache's tail
 * latency from the writer's backlog. Run once under Baseline and
 * once under PnAR2 to see how much of the cache's p99 is retry-
 * induced.
 *
 * The pieces, bottom-up:
 *   host::SsdArray       N drives, one event queue, LPN striping
 *   host::HostInterface  queue pairs + command-fetch arbitration
 *   host::Tenant         workload injection + latency accounting
 */

#include <cstdio>

#include "host/array.hh"
#include "host/host_interface.hh"
#include "host/scenario.hh"
#include "host/tenant.hh"

using namespace ssdrr;

namespace {

void
runUnder(core::Mechanism mech)
{
    // A mid-life operating point: 1K P/E cycles, 6 months retention.
    // This is where read-retry starts to hurt (Fig. 5: ~10 retry
    // steps per read) and the mechanisms pay off.
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;
    cfg.baseRetentionMonths = 6.0;

    // Two drives behind one flat LPN space, page-striped.
    host::SsdArray array(cfg, mech, /*drives=*/2);
    array.precondition();

    // Queue pairs of depth 32; WRR so the cache tenant's commands
    // are fetched 3x as often when both queues are backlogged.
    host::HostInterface::Options hopt;
    hopt.queueDepth = 32;
    hopt.arbitration = host::Arbitration::WeightedRoundRobin;
    host::HostInterface hif(array, hopt);

    // Each tenant owns half the array's logical space.
    const std::uint64_t slice = array.logicalPages() / 2;

    host::TenantSpec kv_spec;
    kv_spec.workload = "YCSB-C"; // 100% reads
    kv_spec.requests = 600;
    workload::Trace kv_trace = host::makeTenantTrace(
        kv_spec, slice, /*base_lpn=*/0, cfg.pageBytes, /*seed=*/101);
    host::Tenant kv("kv", std::move(kv_trace),
                    host::InjectionMode::ClosedLoop, /*qd_limit=*/4,
                    /*weight=*/3, hif);

    host::TenantSpec log_spec;
    log_spec.workload = "stg_0"; // write-heavy
    log_spec.requests = 600;
    workload::Trace log_trace = host::makeTenantTrace(
        log_spec, slice, /*base_lpn=*/slice, cfg.pageBytes,
        /*seed=*/202);
    host::Tenant log("log", std::move(log_trace),
                     host::InjectionMode::ClosedLoop, /*qd_limit=*/32,
                     /*weight=*/1, hif);

    kv.start();
    log.start();
    array.drain();

    std::printf("%s:\n", core::name(mech));
    for (const host::Tenant *t : {&kv, &log}) {
        const host::TenantStats s = t->stats();
        std::printf("  %-4s %4llu reqs  avg %8.1f us  p50 %8.1f us  "
                    "p99 %8.1f us  p99.9 %8.1f us\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.completed),
                    s.avgUs, s.p50Us, s.p99Us, s.p999Us);
    }
    const ssd::RunStats a = array.stats();
    std::printf("  array: %.2f retry steps/read, %llu suspensions, "
                "%llu GC collections\n\n",
                a.avgRetrySteps,
                static_cast<unsigned long long>(a.suspensions),
                static_cast<unsigned long long>(a.gcCollections));
}

} // namespace

int
main()
{
    std::printf("Two tenants, two-drive array, WRR 3:1 — Baseline vs "
                "PnAR2\n\n");
    runUnder(core::Mechanism::Baseline);
    runUnder(core::Mechanism::PnAR2);
    std::puts("The kv tenant's p99 gap between the two runs is the "
              "retry-induced tail.");
    return 0;
}

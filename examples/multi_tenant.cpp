/**
 * @file
 * Walkthrough of the declarative scenario API: two tenants with
 * different service needs sharing a two-drive striped array.
 *
 * Tenant "kv" is a latency-sensitive read-heavy cache (YCSB-C) that
 * keeps a small closed-loop window; tenant "log" is a write-heavy
 * batch writer (stg_0) that pushes a deep window. Weighted
 * round-robin arbitration (weights 3:1) protects the cache's tail
 * latency from the writer's backlog. Run once under Baseline and
 * once under PnAR2 to see how much of the cache's p99 is retry-
 * induced.
 *
 * The scenario is composed once with host::ScenarioBuilder and
 * reused for the whole mechanism sweep; the same spec could be
 * saved with saveFile() and rerun byte-identically via
 * `ssdrr_sim --scenario` (see examples/scenarios/ for checked-in
 * specs exercising QoS throttles, channel affinity, and time
 * horizons).
 */

#include <cstdio>

#include "host/scenario_spec.hh"

using namespace ssdrr;

int
main()
{
    std::printf("Two tenants, two-drive array, WRR 3:1 — Baseline vs "
                "PnAR2\n\n");

    // A mid-life operating point: 1K P/E cycles, 6 months retention.
    // This is where read-retry starts to hurt (Fig. 5: ~10 retry
    // steps per read) and the mechanisms pay off.
    const host::ScenarioSpec spec =
        host::ScenarioBuilder()
            .name("kv-vs-log")
            .pec(1.0)
            .retention(6.0)
            .drives(2)
            .queueDepth(32)
            .arbitration(host::Arbitration::WeightedRoundRobin)
            .mechanism(core::Mechanism::Baseline)
            .mechanism(core::Mechanism::PnAR2)
            .tenant("kv", "YCSB-C", 600) // 100% reads
            .qdLimit(4)
            .weight(3)
            .tenant("log", "stg_0", 600) // write-heavy
            .qdLimit(32)
            .weight(1)
            .build();

    for (const std::string &mname : spec.mechanisms) {
        const core::Mechanism mech = core::parseMechanism(mname);
        const host::ScenarioResult res = host::runScenario(spec, mech);

        std::printf("%s:\n", core::name(mech));
        for (const host::TenantStats &s : res.tenants) {
            std::printf("  %-4s %4llu reqs  avg %8.1f us  p50 %8.1f "
                        "us  p99 %8.1f us  p99.9 %8.1f us\n",
                        s.name.c_str(),
                        static_cast<unsigned long long>(s.completed),
                        s.avgUs, s.p50Us, s.p99Us, s.p999Us);
        }
        const ssd::RunStats &a = res.array;
        std::printf("  array: %.2f retry steps/read, %llu "
                    "suspensions, %llu GC collections\n\n",
                    a.avgRetrySteps,
                    static_cast<unsigned long long>(a.suspensions),
                    static_cast<unsigned long long>(a.gcCollections));
    }
    std::puts("The kv tenant's p99 gap between the two runs is the "
              "retry-induced tail.");
    return 0;
}

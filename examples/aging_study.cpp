/**
 * @file
 * SSD-lifetime planning study: how read latency degrades as a drive
 * ages, and how much of that degradation PR2/AR2 claw back.
 *
 * A storage architect deciding on over-provisioning, refresh policy
 * or drive-replacement schedules needs the latency trajectory over
 * (P/E cycles, retention age). This example sweeps an SSD through
 * its life with a fixed read-heavy workload and prints the
 * trajectory for Baseline vs PnAR2, plus the retry-step inflation
 * that drives it.
 */

#include <cstdio>

#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

namespace {

struct LifePoint {
    const char *label;
    double peKilo;
    double retentionMonths;
};

} // namespace

int
main()
{
    // A drive's life in five snapshots: fresh, one year of light
    // use, mid-life, warranty end (JEDEC: 1-year retention at rated
    // cycles), and beyond-rated wear.
    const LifePoint life[] = {
        {"fresh", 0.0, 0.0},
        {"year-1", 0.25, 3.0},
        {"mid-life", 1.0, 6.0},
        {"warranty-end", 1.5, 12.0},
        {"worn", 2.0, 12.0},
    };

    workload::SyntheticSpec spec = workload::findWorkload("proj_1");
    const workload::Trace trace = workload::generateSynthetic(
        spec, ssd::Config::small().logicalPages(), 1500, 11);

    std::printf("workload %s (read ratio %.2f, cold ratio %.2f), "
                "%zu requests\n\n",
                spec.name.c_str(), trace.readRatio(), trace.coldRatio(),
                trace.size());
    std::printf("%-14s %8s %8s | %12s %12s %10s | %12s\n", "life stage",
                "PEC[K]", "tRET", "Base RT[us]", "PnAR2 RT[us]", "gain",
                "retry steps");

    for (const LifePoint &lp : life) {
        ssd::Config cfg = ssd::Config::small();
        cfg.basePeKilo = lp.peKilo;
        cfg.baseRetentionMonths = lp.retentionMonths;

        ssd::Ssd base(cfg, core::Mechanism::Baseline);
        ssd::Ssd pnar2(cfg, core::Mechanism::PnAR2);
        const ssd::RunStats sb = base.replay(trace);
        const ssd::RunStats sp = pnar2.replay(trace);

        std::printf("%-14s %8.2f %8.0f | %12.0f %12.0f %9.1f%% | %12.1f\n",
                    lp.label, lp.peKilo, lp.retentionMonths,
                    sb.avgResponseUs, sp.avgResponseUs,
                    100.0 * (1.0 - sp.avgResponseUs / sb.avgResponseUs),
                    sb.avgRetrySteps);
    }

    std::printf("\nTakeaway: a worn drive's Baseline response time grows "
                "several-fold purely from\nread-retry; PnAR2 removes a "
                "third to a half of that without touching the chips.\n");
    return 0;
}

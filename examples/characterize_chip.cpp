/**
 * @file
 * In-silico chip characterization: the software analogue of the
 * paper's FPGA-based testing platform (Section 4).
 *
 * Walks one synthetic chip through the characterization flow the
 * authors ran on 160 real chips: age the threshold-voltage
 * distributions, locate VOPT per boundary, walk the retry table
 * until the page decodes, and measure the final-step ECC margin.
 * Useful as a template for plugging in a different chip model or
 * calibration.
 */

#include <cstdio>

#include "ecc/engine.hh"
#include "nand/error_model.hh"
#include "nand/retry_table.hh"
#include "nand/vth_model.hh"

using namespace ssdrr;

int
main()
{
    const nand::OperatingPoint op{1.0, 9.0, 30.0};
    std::printf("characterizing one chip at %.0fK P/E cycles, %.0f-month "
                "retention, %.0f C\n\n",
                op.peKilo, op.retentionMonths, op.temperatureC);

    // --- 1. Physical view: VTH distributions and VOPT drift ---
    nand::VthModel vth;
    vth.age(op);
    std::printf("boundary   default VREF   optimal VREF   drift[mV]\n");
    for (int b = 0; b < nand::VthModel::kBoundaries; ++b) {
        const double def = vth.defaultVref(b);
        const double opt = vth.optimalVref(b);
        std::printf("%8d %13.3f %14.3f %11.0f\n", b, def, opt,
                    1000.0 * (opt - def));
    }

    std::printf("\npage RBER (x1e-3):  default VREF    at VOPT\n");
    for (nand::PageType t : {nand::PageType::LSB, nand::PageType::CSB,
                             nand::PageType::MSB}) {
        std::printf("%17s %13.3f %10.3f\n", nand::pageTypeName(t),
                    1e3 * vth.pageRber(t, 0.0),
                    1e3 * vth.pageRberAtOpt(t));
    }

    // --- 2. Behavioural view: retry-table walk of a real-ish page ---
    const nand::ErrorModel model;
    const nand::RetryTable table;
    const ecc::CapabilityModel ecc(72.0);
    const nand::PageErrorProfile prof = model.pageProfile(0, 17, 5, op);

    std::printf("\nretry walk of page (chip 0, block 17, page 5): "
                "N_RR = %d\n", prof.retrySteps);
    std::printf("step   VREF offset[mV]   errors/KiB   ECC verdict\n");
    const int first = std::max(0, prof.retrySteps - 6);
    for (int k = first; k <= prof.retrySteps; ++k) {
        const double e = model.stepErrors(prof, k);
        std::printf("%4d %17.0f %12.1f   %s\n", k, table.offsetMv(k), e,
                    ecc.correctable(e) ? "pass" : "fail -> retry");
    }
    std::printf("\nfinal-step ECC margin: %.1f of %.0f correctable bits "
                "(%.1f%%)\n",
                ecc.margin(prof.finalErrors), ecc.capability(),
                100.0 * ecc.margin(prof.finalErrors) / ecc.capability());

    // --- 3. What AR2 makes of it ---
    const double x = model.maxSafePreReduction(op);
    nand::TimingReduction red;
    red.pre = x;
    std::printf("\nprofiled safe tPRE reduction at this operating point: "
                "%.1f%%\n-> added errors %.1f, still within margin; "
                "sensing latency x%.3f\n",
                100.0 * x, model.deltaErrors(red, op),
                nand::TimingParams{}.rho(red));
    return 0;
}

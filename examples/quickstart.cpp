/**
 * @file
 * Quickstart: simulate one SSD under every read-retry mechanism.
 *
 * Builds a down-scaled SSD preconditioned to a mid-life operating
 * point (1K P/E cycles, 6-month retention), replays the same
 * synthetic read-dominant workload under each mechanism, and prints
 * the average response time and retry behaviour. This is the
 * 30-second tour of the library: Config -> Ssd -> replay -> RunStats.
 */

#include <cstdio>

#include "core/mechanism.hh"
#include "ssd/ssd.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace ssdrr;

int
main()
{
    // A small SSD keeps the example fast; the full-size paper
    // configuration is ssd::Config::paper().
    ssd::Config cfg = ssd::Config::small();
    cfg.basePeKilo = 1.0;          // 1K P/E cycles
    cfg.baseRetentionMonths = 6.0; // 6-month-old cold data
    cfg.temperatureC = 30.0;

    // A read-dominant workload in the style of Table 2's usr_1.
    workload::SyntheticSpec spec = workload::findWorkload("usr_1");
    const workload::Trace trace = workload::generateSynthetic(
        spec, ssd::Config::small().logicalPages(), 2000, /*seed=*/7);

    std::printf("workload %s: %zu requests, read ratio %.2f, "
                "cold ratio %.2f\n\n",
                trace.name().c_str(), trace.size(), trace.readRatio(),
                trace.coldRatio());
    std::printf("%-10s %12s %12s %10s %12s\n", "mechanism", "avg RT [us]",
                "p99 RT [us]", "avg steps", "suspensions");

    double baseline_rt = 0.0;
    for (core::Mechanism m :
         {core::Mechanism::Baseline, core::Mechanism::PR2,
          core::Mechanism::AR2, core::Mechanism::PnAR2,
          core::Mechanism::PSO, core::Mechanism::PSO_PnAR2,
          core::Mechanism::NoRR}) {
        ssd::Ssd ssd(cfg, m);
        const ssd::RunStats st = ssd.replay(trace);
        if (m == core::Mechanism::Baseline)
            baseline_rt = st.avgResponseUs;
        std::printf("%-10s %12.1f %12.1f %10.2f %12llu   (%.1f%% vs "
                    "Baseline)\n",
                    core::name(m), st.avgResponseUs, st.p99ResponseUs,
                    st.avgRetrySteps,
                    static_cast<unsigned long long>(st.suspensions),
                    100.0 * (1.0 - st.avgResponseUs / baseline_rt));
    }
    return 0;
}
